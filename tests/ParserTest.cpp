//===- tests/ParserTest.cpp - Unit tests for the MiniGo parser ------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "minigo/Lexer.h"
#include "minigo/Parser.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::minigo;

namespace {

std::unique_ptr<Program> parse(const std::string &Src, bool ExpectOk = true) {
  DiagSink Diags;
  Lexer L(Src, Diags);
  auto Prog = std::make_unique<Program>();
  Parser P(L.lexAll(), *Prog, Diags);
  bool Ok = P.parseProgram();
  if (ExpectOk)
    EXPECT_TRUE(Ok) << Diags.dump();
  else
    EXPECT_FALSE(Ok);
  return Prog;
}

} // namespace

TEST(ParserTest, EmptyFunction) {
  auto Prog = parse("func main() {\n}\n");
  ASSERT_EQ(Prog->Funcs.size(), 1u);
  EXPECT_EQ(Prog->Funcs[0]->Name, "main");
  EXPECT_TRUE(Prog->Funcs[0]->Params.empty());
  EXPECT_TRUE(Prog->Funcs[0]->Results.empty());
}

TEST(ParserTest, ParamsAndResults) {
  auto Prog = parse("func f(a int, b *int, c []int) (int, bool) {\n"
                    "  return a, true\n"
                    "}\n");
  FuncDecl *F = Prog->Funcs[0];
  ASSERT_EQ(F->Params.size(), 3u);
  EXPECT_EQ(F->Params[0]->Name, "a");
  EXPECT_TRUE(F->Params[1]->Ty->isPointer());
  EXPECT_TRUE(F->Params[2]->Ty->isSlice());
  ASSERT_EQ(F->Results.size(), 2u);
  EXPECT_TRUE(F->Results[0]->isInt());
  EXPECT_TRUE(F->Results[1]->isBool());
}

TEST(ParserTest, NamedResultsAreAccepted) {
  auto Prog = parse("func f() (r0 []int, r1 []int) {\n"
                    "  s := make([]int, 3)\n"
                    "  return s, s\n"
                    "}\n");
  FuncDecl *F = Prog->Funcs[0];
  ASSERT_EQ(F->Results.size(), 2u);
  EXPECT_TRUE(F->Results[0]->isSlice());
  EXPECT_TRUE(F->Results[1]->isSlice());
}

TEST(ParserTest, StructDeclaration) {
  auto Prog = parse("type Node struct {\n"
                    "  val int\n"
                    "  next *Node\n"
                    "}\n"
                    "func main() {\n}\n");
  Type *T = Prog->Types->findStruct("Node");
  ASSERT_NE(T, nullptr);
  ASSERT_EQ(T->fields().size(), 2u);
  EXPECT_EQ(T->fields()[0].Name, "val");
  EXPECT_EQ(T->fields()[1].Offset, 8u);
  EXPECT_TRUE(T->fields()[1].Ty->isPointer());
  EXPECT_EQ(T->size(), 16u);
  EXPECT_TRUE(T->hasPointers());
}

TEST(ParserTest, ShortVarDecl) {
  auto Prog = parse("func main() {\n  x := 1 + 2*3\n}\n");
  auto *B = Prog->Funcs[0]->Body;
  ASSERT_EQ(B->Stmts.size(), 1u);
  auto *DS = cast<VarDeclStmt>(B->Stmts[0]);
  ASSERT_EQ(DS->Vars.size(), 1u);
  EXPECT_EQ(DS->Vars[0]->Name, "x");
  ASSERT_EQ(DS->Inits.size(), 1u);
  // 1 + 2*3 must parse with * binding tighter.
  auto *Add = cast<BinaryExpr>(DS->Inits[0]);
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->Rhs)->Op, BinaryOp::Mul);
}

TEST(ParserTest, MultiValueDefine) {
  auto Prog = parse("func f() (int, int) { return 1, 2 }\n"
                    "func main() {\n  a, b := f()\n  sink(a + b)\n}\n");
  auto *DS = cast<VarDeclStmt>(Prog->Funcs[1]->Body->Stmts[0]);
  EXPECT_EQ(DS->Vars.size(), 2u);
  EXPECT_EQ(DS->Inits.size(), 1u);
  EXPECT_EQ(DS->Inits[0]->kind(), ExprKind::Call);
}

TEST(ParserTest, PointerChainsAndDeref) {
  auto Prog = parse("func main() {\n"
                    "  x := 5\n"
                    "  p := &x\n"
                    "  pp := &p\n"
                    "  **pp = 7\n"
                    "}\n");
  auto *AS = cast<AssignStmt>(Prog->Funcs[0]->Body->Stmts[3]);
  auto *Outer = cast<DerefExpr>(AS->Lhs[0]);
  EXPECT_EQ(Outer->Sub->kind(), ExprKind::Deref);
}

TEST(ParserTest, ForThreeClause) {
  auto Prog = parse("func main() {\n"
                    "  for i := 0; i < 10; i = i + 1 {\n"
                    "    sink(i)\n"
                    "  }\n"
                    "}\n");
  auto *FS = cast<ForStmt>(Prog->Funcs[0]->Body->Stmts[0]);
  EXPECT_NE(FS->Init, nullptr);
  EXPECT_NE(FS->Cond, nullptr);
  EXPECT_NE(FS->Post, nullptr);
}

TEST(ParserTest, ForCondOnly) {
  auto Prog = parse("func main() {\n  x := 0\n  for x < 3 { x = x + 1 }\n}\n");
  auto *FS = cast<ForStmt>(Prog->Funcs[0]->Body->Stmts[1]);
  EXPECT_EQ(FS->Init, nullptr);
  EXPECT_NE(FS->Cond, nullptr);
  EXPECT_EQ(FS->Post, nullptr);
}

TEST(ParserTest, ForInfinite) {
  auto Prog = parse("func main() {\n  for {\n    break\n  }\n}\n");
  auto *FS = cast<ForStmt>(Prog->Funcs[0]->Body->Stmts[0]);
  EXPECT_EQ(FS->Cond, nullptr);
  ASSERT_EQ(FS->Body->Stmts.size(), 1u);
  EXPECT_EQ(FS->Body->Stmts[0]->kind(), StmtKind::Break);
}

TEST(ParserTest, IfElseChain) {
  auto Prog = parse("func main() {\n"
                    "  x := 1\n"
                    "  if x < 0 {\n    sink(0)\n"
                    "  } else if x == 0 {\n    sink(1)\n"
                    "  } else {\n    sink(2)\n  }\n"
                    "}\n");
  auto *IS = cast<IfStmt>(Prog->Funcs[0]->Body->Stmts[1]);
  ASSERT_NE(IS->Else, nullptr);
  EXPECT_EQ(IS->Else->kind(), StmtKind::If);
}

TEST(ParserTest, MakeSliceAndMap) {
  auto Prog = parse("func main() {\n"
                    "  s := make([]int, 10)\n"
                    "  t := make([]int, 5, 20)\n"
                    "  m := make(map[int]int)\n"
                    "  sink(len(s) + len(t) + len(m))\n"
                    "}\n");
  auto *S0 = cast<VarDeclStmt>(Prog->Funcs[0]->Body->Stmts[0]);
  auto *ME = cast<MakeExpr>(S0->Inits[0]);
  EXPECT_TRUE(ME->MadeTy->isSlice());
  EXPECT_NE(ME->Len, nullptr);
  EXPECT_EQ(ME->CapExpr, nullptr);
  auto *S2 = cast<VarDeclStmt>(Prog->Funcs[0]->Body->Stmts[2]);
  EXPECT_TRUE(cast<MakeExpr>(S2->Inits[0])->MadeTy->isMap());
}

TEST(ParserTest, CompositeLiteralAndAddrOf) {
  auto Prog = parse("type P struct { x int\n y int\n }\n"
                    "func main() {\n"
                    "  a := P{x: 1, y: 2}\n"
                    "  b := &P{x: 3, y: 4}\n"
                    "  sink(a.x + b.y)\n"
                    "}\n");
  auto *S0 = cast<VarDeclStmt>(Prog->Funcs[0]->Body->Stmts[0]);
  auto *C0 = cast<CompositeExpr>(S0->Inits[0]);
  EXPECT_FALSE(C0->TakeAddr);
  EXPECT_EQ(C0->Inits.size(), 2u);
  auto *S1 = cast<VarDeclStmt>(Prog->Funcs[0]->Body->Stmts[1]);
  EXPECT_TRUE(cast<CompositeExpr>(S1->Inits[0])->TakeAddr);
}

TEST(ParserTest, CompositeLiteralNotInForHeader) {
  // `for p == q {` must treat `{` as the loop body, not a literal.
  parse("type T struct { x int\n }\n"
        "func main() {\n"
        "  p := &T{x: 1}\n"
        "  q := p\n"
        "  for p == q {\n    break\n  }\n"
        "}\n");
}

TEST(ParserTest, DeferAndPanic) {
  auto Prog = parse("func g(x int) {\n  sink(x)\n}\n"
                    "func main() {\n"
                    "  defer g(1)\n"
                    "  panic(3)\n"
                    "}\n");
  auto *Body = Prog->Funcs[1]->Body;
  EXPECT_EQ(Body->Stmts[0]->kind(), StmtKind::Defer);
  EXPECT_EQ(Body->Stmts[1]->kind(), StmtKind::Panic);
}

TEST(ParserTest, AppendAndIndex) {
  auto Prog = parse("func main() {\n"
                    "  s := make([]int, 0)\n"
                    "  s = append(s, 4)\n"
                    "  s[0] = 5\n"
                    "  sink(s[0])\n"
                    "}\n");
  auto *AS = cast<AssignStmt>(Prog->Funcs[0]->Body->Stmts[1]);
  EXPECT_EQ(AS->Rhs[0]->kind(), ExprKind::Append);
}

TEST(ParserTest, DeleteStatement) {
  auto Prog = parse("func main() {\n"
                    "  m := make(map[int]int)\n"
                    "  m[1] = 2\n"
                    "  delete(m, 1)\n"
                    "}\n");
  EXPECT_EQ(Prog->Funcs[0]->Body->Stmts[2]->kind(), StmtKind::Delete);
}

TEST(ParserTest, SyntaxErrorIsReported) {
  parse("func main( {\n}\n", /*ExpectOk=*/false);
}

TEST(ParserTest, RedefinedFunctionIsReported) {
  parse("func f() {\n}\nfunc f() {\n}\n", /*ExpectOk=*/false);
}

TEST(ParserTest, FieldChainThroughPointers) {
  auto Prog = parse("type Inner struct { v int\n }\n"
                    "type Outer struct { in *Inner\n }\n"
                    "func main() {\n"
                    "  o := &Outer{in: &Inner{v: 3}}\n"
                    "  sink(o.in.v)\n"
                    "}\n");
  auto *SS = cast<SinkStmt>(Prog->Funcs[0]->Body->Stmts[1]);
  auto *FE = cast<FieldExpr>(SS->Value);
  EXPECT_EQ(FE->FieldName, "v");
  EXPECT_EQ(cast<FieldExpr>(FE->Base)->FieldName, "in");
}

TEST(ParserTest, CompoundAssignmentDesugars) {
  auto Prog = parse("func main() {\n"
                    "  x := 1\n"
                    "  x += 2\n"
                    "  x -= 1\n"
                    "  x *= 3\n"
                    "  x /= 2\n"
                    "  x %= 5\n"
                    "  sink(x)\n"
                    "}\n");
  auto *Body = Prog->Funcs[0]->Body;
  auto *AS = cast<AssignStmt>(Body->Stmts[1]);
  auto *BE = cast<BinaryExpr>(AS->Rhs[0]);
  EXPECT_EQ(BE->Op, BinaryOp::Add);
  EXPECT_EQ(BE->Lhs, AS->Lhs[0]) << "desugaring shares the lvalue node";
}

TEST(ParserTest, IncrementDecrementDesugar) {
  auto Prog = parse("func main() {\n"
                    "  x := 1\n"
                    "  x++\n"
                    "  x--\n"
                    "  sink(x)\n"
                    "}\n");
  auto *Body = Prog->Funcs[0]->Body;
  EXPECT_EQ(Body->Stmts[1]->kind(), StmtKind::Assign);
  EXPECT_EQ(Body->Stmts[2]->kind(), StmtKind::Assign);
}

TEST(ParserTest, IfWithInitStatement) {
  auto Prog = parse("func f() int { return 4 }\n"
                    "func main() {\n"
                    "  if v := f(); v > 2 {\n"
                    "    sink(v)\n"
                    "  } else {\n"
                    "    sink(-v)\n"
                    "  }\n"
                    "}\n");
  // Desugars to a block wrapping {init; if}.
  auto *Wrapper = cast<BlockStmt>(Prog->Funcs[1]->Body->Stmts[0]);
  ASSERT_EQ(Wrapper->Stmts.size(), 2u);
  EXPECT_EQ(Wrapper->Stmts[0]->kind(), StmtKind::VarDecl);
  EXPECT_EQ(Wrapper->Stmts[1]->kind(), StmtKind::If);
}
