//===- tests/GraphShapeTest.cpp - Escape graph construction tests ---------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Pins the escape graph's shape against table 2 and figure 1: which edges
// each assignment form generates and with what Derefs weights, plus the
// derived Holds/TrackDerefs machinery (definitions 4.6-4.9).
//
//===----------------------------------------------------------------------===//

#include "escape/GraphBuilder.h"
#include "escape/Solver.h"
#include "minigo/Frontend.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::escape;
using namespace gofree::minigo;

namespace {

struct Built {
  std::unique_ptr<Program> Prog;
  BuildResult Build;

  uint32_t loc(const std::string &Name) const {
    for (const Location &L : Build.Graph.locations())
      if (L.Name == Name)
        return L.Id;
    ADD_FAILURE() << "no location " << Name;
    return 0;
  }

  bool hasEdge(const std::string &Src, const std::string &Dst, int Derefs) {
    uint32_t S = loc(Src), D = loc(Dst);
    for (const Edge &E : Build.Graph.inEdges(D))
      if (E.Src == S && E.Derefs == Derefs)
        return true;
    return false;
  }

  /// MinDerefs(M, L) via the solver's walk; NotHeld if M not in Holds(L).
  int minDerefs(const std::string &M, const std::string &L) {
    std::vector<int8_t> Dist;
    minDerefsFrom(Build.Graph, loc(L), Dist);
    return Dist[loc(M)];
  }
};

Built buildFor(const std::string &Src, const std::string &Fn = "f") {
  DiagSink Diags;
  Built B;
  B.Prog = parseAndCheck(Src, Diags);
  EXPECT_NE(B.Prog, nullptr) << Diags.dump();
  TagMap NoTags;
  B.Build = buildEscapeGraph(B.Prog->findFunc(Fn), NoTags);
  return B;
}

} // namespace

TEST(GraphShapeTest, Table2EdgeForms) {
  // The four rows of table 2, one assignment each.
  Built B = buildFor("func f(n int) {\n"
                     "  x := 1\n"
                     "  p := &x\n"  // p = &q  =>  q --(-1)--> p
                     "  q := p\n"   // p = q   =>  q --0--> p
                     "  v := *q\n"  // p = *q  =>  q --1--> p
                     "  pp := &p\n"
                     "  *pp = q\n"  // *p = q  =>  q --0--> heapLoc
                     "  sink(v)\n"
                     "}\n");
  EXPECT_TRUE(B.hasEdge("x", "p", -1));
  EXPECT_TRUE(B.hasEdge("p", "q", 0));
  EXPECT_TRUE(B.hasEdge("q", "v", 1));
  EXPECT_TRUE(B.hasEdge("q", "heapLoc", 0));
  // The indirect store generates no direct pp-to-q edge (the whole point
  // of the O(N^2) simplification).
  EXPECT_FALSE(B.hasEdge("q", "pp", 0));
}

TEST(GraphShapeTest, Fig1StyleGraph) {
  Built B = buildFor("type D struct { v int\n }\n"
                     "func f() {\n"
                     "  c := D{v: 1}\n"
                     "  d := D{v: 2}\n"
                     "  pd := &d\n"
                     "  ppd := &pd\n"
                     "  pc := &c\n"
                     "  *ppd = pc\n"
                     "  pd2 := *ppd\n"
                     "  sink(pd2.v)\n"
                     "}\n");
  EXPECT_TRUE(B.hasEdge("d", "pd", -1));
  EXPECT_TRUE(B.hasEdge("pd", "ppd", -1));
  EXPECT_TRUE(B.hasEdge("c", "pc", -1));
  EXPECT_TRUE(B.hasEdge("pc", "heapLoc", 0));
  EXPECT_TRUE(B.hasEdge("ppd", "pd2", 1));

  // TrackDerefs clamps at 0 before each addition (definition 4.7):
  // d -(-1)-> pd -(-1)-> ppd -(1)-> pd2 gives max(0, max(0,1)-1)-1 = -1.
  EXPECT_EQ(B.minDerefs("d", "pd2"), -1) << "pd2 may point to d";
  EXPECT_EQ(B.minDerefs("pd", "pd2"), 0) << "pd2 may hold pd's value";
  // c only flows into heapLoc, never into pd2's holds set.
  EXPECT_EQ(B.minDerefs("c", "pd2"), NotHeld);
  EXPECT_EQ(B.minDerefs("c", "heapLoc"), -1) << "c's address escapes";
}

TEST(GraphShapeTest, CompositeLiteralsFollowFig1) {
  // bigObj := Big{fat: s, p: &c}: a by-value literal merges its
  // initializers' flows into the destination (value role for s, address
  // role for c), exactly like fig. 1's bigObj node.
  Built B = buildFor("type Big struct { fat int\n p *int\n }\n"
                     "func f(s int) {\n"
                     "  c := 1\n"
                     "  bigObj := Big{fat: s, p: &c}\n"
                     "  sink(bigObj.fat)\n"
                     "}\n");
  EXPECT_TRUE(B.hasEdge("s", "bigObj", 0));
  EXPECT_TRUE(B.hasEdge("c", "bigObj", -1));
  EXPECT_EQ(B.minDerefs("c", "bigObj"), -1);
}

TEST(GraphShapeTest, MakeCreatesAllocPointedToByVar) {
  Built B = buildFor("func f(n int) {\n"
                     "  s := make([]int, n)\n"
                     "  sink(s[0])\n"
                     "}\n");
  // The allocation location flows into s at derefs -1: s points to it.
  std::vector<int8_t> Dist;
  minDerefsFrom(B.Build.Graph, B.loc("s"), Dist);
  bool Found = false;
  for (const Location &L : B.Build.Graph.locations())
    if (L.Kind == LocKind::Alloc && Dist[L.Id] == -1)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(GraphShapeTest, ReturnValuesGetDummyLocations) {
  Built B = buildFor("func f(n int) ([]int, int) {\n"
                     "  s := make([]int, n)\n"
                     "  return s, n\n"
                     "}\n");
  ASSERT_EQ(B.Build.Graph.RetLocs.size(), 2u);
  const Location &R0 = B.Build.Graph.loc(B.Build.Graph.RetLocs[0]);
  EXPECT_TRUE(R0.HeapAlloc) << "definition 4.10: return is heap";
  EXPECT_TRUE(R0.ExposesRet) << "definition 4.11: return exposes";
  EXPECT_EQ(R0.DeclDepth, -1);
  EXPECT_TRUE(B.hasEdge("s", "ret0", 0));
}

TEST(GraphShapeTest, GraphSizeIsLinearInProgramSize) {
  // |L| and |E| are O(N) (section 4.1): doubling the statement count must
  // roughly double locations and edges, never square them.
  auto SizeOf = [](int Copies) {
    std::string Src = "func f(n int) {\n  a0 := make([]int, n)\n";
    for (int I = 1; I <= Copies; ++I)
      Src += "  a" + std::to_string(I) + " := a" + std::to_string(I - 1) +
             "\n";
    Src += "  sink(a" + std::to_string(Copies) + "[0])\n}\n";
    DiagSink Diags;
    auto Prog = parseAndCheck(Src, Diags);
    TagMap NoTags;
    BuildResult B = buildEscapeGraph(Prog->findFunc("f"), NoTags);
    return std::make_pair(B.Graph.size(), B.Graph.edgeCount());
  };
  auto [L1, E1] = SizeOf(100);
  auto [L2, E2] = SizeOf(200);
  EXPECT_LT(L2, 2 * L1 + 10);
  EXPECT_LT(E2, 2 * E1 + 10);
}

TEST(GraphShapeTest, SelfEdgesAreDropped) {
  Built B = buildFor("func f(n int) {\n"
                     "  s := make([]int, 0)\n"
                     "  s = append(s, n)\n"
                     "  sink(s[0])\n"
                     "}\n");
  uint32_t S = B.loc("s");
  for (const Edge &E : B.Build.Graph.inEdges(S))
    EXPECT_NE(E.Src, S) << "self-edge from s = append(s, ...)";
}
