//===- tests/FrontendFuzzTest.cpp - Frontend robustness tests -------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// The frontend must reject garbage gracefully: random byte soup, shuffled
// token streams, truncated programs and deeply nested input must produce
// diagnostics, never crashes or accepted-but-wrong programs.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "minigo/Frontend.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::minigo;

namespace {

/// Parses without crashing; returns whether it was accepted.
bool tryParse(const std::string &Src) {
  DiagSink Diags;
  auto Prog = parseAndCheck(Src, Diags);
  if (!Prog) {
    EXPECT_TRUE(Diags.hasErrors()) << "rejected without a diagnostic";
    return false;
  }
  return true;
}

} // namespace

TEST(FrontendFuzzTest, RandomAsciiSoup) {
  Rng R(2024);
  const char Alphabet[] = "abcxyz0123456789 \n\t(){}[]<>=+-*/%&|!.,:;_";
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::string Src;
    size_t Len = R.below(400);
    for (size_t I = 0; I < Len; ++I)
      Src.push_back(Alphabet[R.below(sizeof(Alphabet) - 1)]);
    tryParse(Src); // Must not crash; acceptance is fine if it checks out.
  }
}

TEST(FrontendFuzzTest, KeywordSoup) {
  Rng R(7);
  const char *Words[] = {"func",   "var",   "type", "struct", "if",
                         "else",   "for",   "return", "break", "continue",
                         "make",   "new",   "append", "map",  "int",
                         "bool",   "nil",   "sink",  "x",     "y",
                         "f",      "(",     ")",     "{",     "}",
                         "[",      "]",     ":=",    "=",     ",",
                         "*",      "&",     "1",     "42",    "\n"};
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Src;
    size_t Len = R.below(120);
    for (size_t I = 0; I < Len; ++I) {
      Src += Words[R.below(std::size(Words))];
      Src += ' ';
    }
    tryParse(Src);
  }
}

TEST(FrontendFuzzTest, TruncatedValidProgram) {
  const std::string Full = "type Node struct { v int\n next *Node\n }\n"
                           "func f(n int) []int {\n"
                           "  s := make([]int, n)\n"
                           "  for i := 0; i < n; i = i + 1 {\n"
                           "    s[i] = i * 2\n"
                           "  }\n"
                           "  return s\n"
                           "}\n"
                           "func main(n int) {\n"
                           "  q := f(n)\n"
                           "  sink(q[0])\n"
                           "}\n";
  for (size_t Cut = 0; Cut < Full.size(); Cut += 3)
    tryParse(Full.substr(0, Cut));
}

TEST(FrontendFuzzTest, DeeplyNestedBlocksAndExpressions) {
  // 300 nested blocks.
  std::string Blocks = "func main() {\n";
  for (int I = 0; I < 300; ++I)
    Blocks += "{\n";
  Blocks += "sink(1)\n";
  for (int I = 0; I < 300; ++I)
    Blocks += "}\n";
  Blocks += "}\n";
  EXPECT_TRUE(tryParse(Blocks));

  // 300 nested parens.
  std::string Parens = "func main() {\n  sink(";
  for (int I = 0; I < 300; ++I)
    Parens += "(";
  Parens += "1";
  for (int I = 0; I < 300; ++I)
    Parens += ")";
  Parens += ")\n}\n";
  EXPECT_TRUE(tryParse(Parens));
}

TEST(FrontendFuzzTest, HugeButValidProgramCompilesAndRuns) {
  // A thousand tiny functions: the whole pipeline (including the SCC walk
  // and per-function analysis) must stay robust at width.
  std::string Src;
  for (int I = 0; I < 1000; ++I)
    Src += "func f" + std::to_string(I) + "(a int) int {\n  return a + " +
           std::to_string(I) + "\n}\n";
  Src += "func main() {\n  sink(f999(1) + f0(2))\n}\n";
  compiler::Compilation C = compiler::compile(Src, {});
  ASSERT_TRUE(C.ok()) << C.Errors;
  compiler::ExecOutcome O = compiler::execute(C, "main");
  ASSERT_TRUE(O.Run.ok());
}

TEST(FrontendFuzzTest, MutatedValidProgramsNeverCrash) {
  const std::string Base = "func g(s []int, n int) int {\n"
                           "  m := make(map[int]int, 8)\n"
                           "  m[n] = len(s)\n"
                           "  return m[n]\n"
                           "}\n"
                           "func main(n int) {\n"
                           "  s := make([]int, n)\n"
                           "  sink(g(s, n))\n"
                           "}\n";
  Rng R(555);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Src = Base;
    // Apply 1-4 random single-character mutations.
    int Muts = 1 + (int)R.below(4);
    for (int M = 0; M < Muts; ++M) {
      size_t Pos = R.below(Src.size());
      switch (R.below(3)) {
      case 0:
        Src[Pos] = (char)(32 + R.below(95));
        break;
      case 1:
        Src.erase(Pos, 1);
        break;
      case 2:
        Src.insert(Pos, 1, (char)(32 + R.below(95)));
        break;
      }
    }
    tryParse(Src);
  }
}
