//===- tests/BaselinesTest.cpp - Baseline analysis tests ------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Pins down table 3: for the figure 1 program, the three analyses see
// different points-to sets for pd2:
//   Fast Escape Analysis:   {}            (O(N), no points-to at all)
//   Go escape graph:        {d}           (O(N^2), indirect store omitted)
//   Connection graph:       {c, d}        (O(N^3), complete)
//
//===----------------------------------------------------------------------===//

#include "escape/Analysis.h"
#include "escape/Baselines.h"
#include "minigo/Frontend.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::escape;
using namespace gofree::minigo;

namespace {

const char *Fig1Src = "type D struct { v int\n }\n"
                      "func f() {\n"
                      "  c := D{v: 1}\n"
                      "  d := D{v: 2}\n"
                      "  pd := &d\n"
                      "  ppd := &pd\n"
                      "  pc := &c\n"
                      "  *ppd = pc\n"
                      "  pd2 := *ppd\n"
                      "  sink(pd2.v)\n"
                      "}\n";

std::unique_ptr<Program> parse(const char *Src) {
  DiagSink Diags;
  auto P = parseAndCheck(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.dump();
  return P;
}

const VarDecl *findVar(const FuncDecl *Fn, const std::string &Name) {
  for (const VarDecl *V : Fn->AllVars)
    if (V->Name == Name)
      return V;
  ADD_FAILURE() << "no var " << Name;
  return nullptr;
}

bool containsName(const std::vector<std::string> &Names,
                  const std::string &Needle) {
  for (const std::string &N : Names)
    if (N == Needle)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Table 3
//===----------------------------------------------------------------------===//

TEST(Table3Test, FastAnalysisHasNoPointsToForDerivedPointer) {
  auto P = parse(Fig1Src);
  FastEscapeResult R = fastEscape(*P);
  const VarDecl *Pd2 = findVar(P->Funcs[0], "pd2");
  EXPECT_TRUE(R.pointsToNames(Pd2).empty());
}

TEST(Table3Test, ConnectionGraphSeesBothTargets) {
  auto P = parse(Fig1Src);
  ConnGraphAnalysis CG(P->Funcs[0]);
  const VarDecl *Pd2 = findVar(P->Funcs[0], "pd2");
  auto Pts = CG.pointsToNames(Pd2);
  EXPECT_TRUE(containsName(Pts, "c")) << "connection graph must track the "
                                         "indirect store";
  EXPECT_TRUE(containsName(Pts, "d"));
}

TEST(Table3Test, GoGraphSeesOnlyTrackedTarget) {
  auto P = parse(Fig1Src);
  ProgramAnalysis A = analyzeProgram(*P);
  const FuncDecl *Fn = P->Funcs[0];
  const BuildResult &B = A.FuncGraphs.at(Fn);
  auto Pts = pointsToSet(B.Graph, B.VarLoc.at(findVar(Fn, "pd2")));
  bool HasC = false, HasD = false;
  for (uint32_t Id : Pts) {
    HasC |= B.Graph.loc(Id).Name == "c";
    HasD |= B.Graph.loc(Id).Name == "d";
  }
  EXPECT_FALSE(HasC);
  EXPECT_TRUE(HasD);
}

//===----------------------------------------------------------------------===//
// Fast escape analysis behavior
//===----------------------------------------------------------------------===//

TEST(FastEscapeTest, LocalConstAllocStays) {
  auto P = parse("func f() {\n"
                 "  s := make([]int, 8)\n"
                 "  s[0] = 1\n"
                 "  sink(s[0])\n"
                 "}\n");
  FastEscapeResult R = fastEscape(*P);
  ASSERT_EQ(R.SiteOnStack.size(), 1u);
  EXPECT_TRUE(R.SiteOnStack[0]);
}

TEST(FastEscapeTest, ReturnedAllocEscapes) {
  auto P = parse("func f() []int {\n"
                 "  s := make([]int, 8)\n"
                 "  return s\n"
                 "}\n");
  FastEscapeResult R = fastEscape(*P);
  EXPECT_FALSE(R.SiteOnStack[0]);
}

TEST(FastEscapeTest, CopyPropagatesEscape) {
  // Fast analysis does not distinguish objects: t escaping drags s (and
  // the allocation bound to it) along.
  auto P = parse("func g(x []int) {\n  sink(x[0])\n}\n"
                 "func f() {\n"
                 "  s := make([]int, 8)\n"
                 "  t := s\n"
                 "  g(t)\n"
                 "}\n");
  FastEscapeResult R = fastEscape(*P);
  const FuncDecl *F = P->findFunc("f");
  EXPECT_TRUE(R.Escaping.count(findVar(F, "s")));
  EXPECT_TRUE(R.Escaping.count(findVar(F, "t")));
  EXPECT_FALSE(R.SiteOnStack[0]);
}

TEST(FastEscapeTest, VariableSizeNeverStacks) {
  auto P = parse("func f(n int) {\n"
                 "  s := make([]int, n)\n"
                 "  sink(s[0])\n"
                 "}\n");
  FastEscapeResult R = fastEscape(*P);
  EXPECT_FALSE(R.SiteOnStack[0]);
}

TEST(FastEscapeTest, MorePessimisticThanGoGraph) {
  // The aliasing example: Go's graph keeps the allocation on the stack
  // (both aliases are local), while the fast analysis gives up the moment
  // the reference is copied into a call.
  const char *Src = "func use(s []int) int {\n  return len(s)\n}\n"
                    "func f() {\n"
                    "  s := make([]int, 8)\n"
                    "  sink(use(s))\n"
                    "}\n";
  auto P = parse(Src);
  FastEscapeResult Fast = fastEscape(*P);
  EXPECT_FALSE(Fast.SiteOnStack[0]);
  auto P2 = parse(Src);
  ProgramAnalysis Go = analyzeProgram(*P2);
  // With the extended tags, Go/GoFree knows `use` leaks nothing.
  EXPECT_TRUE(Go.SiteOnStack[0]);
}

//===----------------------------------------------------------------------===//
// Connection graph behavior
//===----------------------------------------------------------------------===//

TEST(ConnGraphTest, DirectChains) {
  auto P = parse("type T struct { v int\n }\n"
                 "func f() {\n"
                 "  a := T{v: 1}\n"
                 "  p := &a\n"
                 "  q := p\n"
                 "  sink(q.v)\n"
                 "}\n");
  ConnGraphAnalysis CG(P->Funcs[0]);
  auto Pts = CG.pointsToNames(findVar(P->Funcs[0], "q"));
  EXPECT_TRUE(containsName(Pts, "a"));
  EXPECT_EQ(Pts.size(), 1u);
}

TEST(ConnGraphTest, StoreThenLoadRoundTrips) {
  auto P = parse("type T struct { p *int\n }\n"
                 "func f() {\n"
                 "  x := 1\n"
                 "  t := &T{p: nil}\n"
                 "  t.p = &x\n"
                 "  q := t.p\n"
                 "  sink(*q)\n"
                 "}\n");
  ConnGraphAnalysis CG(P->Funcs[0]);
  auto Pts = CG.pointsToNames(findVar(P->Funcs[0], "q"));
  EXPECT_TRUE(containsName(Pts, "x"));
}

TEST(ConnGraphTest, CallResultsAreWildcards) {
  auto P = parse("func mk() []int {\n  return make([]int, 3)\n}\n"
                 "func f() {\n"
                 "  s := mk()\n"
                 "  sink(s[0])\n"
                 "}\n");
  ConnGraphAnalysis CG(P->findFunc("f"));
  auto Pts = CG.pointsToNames(findVar(P->findFunc("f"), "s"));
  EXPECT_TRUE(containsName(Pts, "heap"));
}

TEST(ConnGraphTest, CountsWorkForComplexityComparison) {
  auto P = parse(Fig1Src);
  ConnGraphAnalysis CG(P->Funcs[0]);
  EXPECT_GT(CG.constraintApplications(), 0u);
  EXPECT_GT(CG.nodeCount(), 5u);
}
