//===- tests/DiagnosticsTest.cpp - Escape diagnostics tests ---------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "escape/Diagnostics.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;
using namespace gofree::escape;

namespace {

std::string diagsFor(const std::string &Src) {
  Compilation C = compile(Src, {});
  EXPECT_TRUE(C.ok()) << C.Errors;
  if (!C.ok())
    return "";
  return renderEscapeDiagnostics(*C.Prog, C.Analysis);
}

} // namespace

TEST(DiagnosticsTest, ReportsEscapeAndFreeDecisions) {
  std::string D = diagsFor("func f(n int) {\n"
                           "  s := make([]int, n)\n"
                           "  t := make([]int, 8)\n"
                           "  sink(s[0] + t[0])\n"
                           "}\n");
  EXPECT_NE(D.find("make([]int) escapes to heap"), std::string::npos);
  EXPECT_NE(D.find("make([]int) does not escape"), std::string::npos);
  EXPECT_NE(D.find("tcfree: s (slice) at end of scope"), std::string::npos);
  EXPECT_EQ(D.find("tcfree: t"), std::string::npos)
      << "stack-allocated slices are not freed";
}

TEST(DiagnosticsTest, ReportsMovedToHeap) {
  std::string D = diagsFor("func cell(v int) *int {\n"
                           "  x := v\n"
                           "  return &x\n"
                           "}\n"
                           "func main() {\n"
                           "  sink(*cell(3))\n"
                           "}\n");
  EXPECT_NE(D.find("moved to heap: x"), std::string::npos);
}

TEST(DiagnosticsTest, SortedBySourcePosition) {
  Compilation C = compile("func f(n int) {\n"
                          "  a := make([]int, n)\n"
                          "  b := make([]int, n)\n"
                          "  sink(a[0] + b[0])\n"
                          "}\n",
                          {});
  ASSERT_TRUE(C.ok());
  auto Ds = escapeDiagnostics(C.Prog->Funcs[0], C.Analysis);
  ASSERT_GE(Ds.size(), 2u);
  for (size_t I = 1; I < Ds.size(); ++I)
    EXPECT_LE(Ds[I - 1].Loc.Line, Ds[I].Loc.Line);
}

TEST(DiagnosticsTest, MapDecisions) {
  std::string D = diagsFor("func f(n int) {\n"
                           "  small := make(map[int]int, 4)\n"
                           "  big := make(map[int]int, n)\n"
                           "  small[1] = 1\n"
                           "  big[1] = 1\n"
                           "  sink(small[1] + big[1])\n"
                           "}\n");
  EXPECT_NE(D.find("make(map[int]int) does not escape"), std::string::npos);
  EXPECT_NE(D.find("make(map[int]int) escapes to heap"), std::string::npos);
  EXPECT_NE(D.find("tcfree: big (map)"), std::string::npos);
}
