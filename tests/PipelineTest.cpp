//===- tests/PipelineTest.cpp - Public API contract tests -----------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// The compile()/execute() entry points are the library's public surface;
// these tests pin their error handling and option plumbing.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;

TEST(PipelineTest, CompileErrorsAreReportedNotThrown) {
  Compilation C = compile("func main( {\n}\n", {});
  EXPECT_FALSE(C.ok());
  EXPECT_FALSE(C.Errors.empty());
  EXPECT_NE(C.Errors.find("expected"), std::string::npos);
}

TEST(PipelineTest, SemanticErrorsIncludePositions) {
  Compilation C = compile("func main() {\n  sink(q)\n}\n", {});
  EXPECT_FALSE(C.ok());
  EXPECT_NE(C.Errors.find("2:"), std::string::npos)
      << "diagnostics carry line numbers: " << C.Errors;
}

TEST(PipelineTest, MissingEntryFunction) {
  Compilation C = compile("func helper() {\n  sink(1)\n}\n", {});
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main");
  EXPECT_FALSE(O.Run.ok());
  EXPECT_NE(O.Run.Error.find("no entry function"), std::string::npos);
}

TEST(PipelineTest, EntryArgumentCountChecked) {
  Compilation C = compile("func main(a int, b int) {\n  sink(a + b)\n}\n", {});
  ASSERT_TRUE(C.ok());
  EXPECT_FALSE(execute(C, "main", {1}).Run.ok());
  EXPECT_TRUE(execute(C, "main", {1, 2}).Run.ok());
}

TEST(PipelineTest, NonMainEntryPoints) {
  Compilation C = compile("func alpha(x int) {\n  sink(x)\n}\n"
                          "func beta(x int) {\n  sink(x * 2)\n}\n",
                          {});
  ASSERT_TRUE(C.ok());
  ExecOutcome A = execute(C, "alpha", {21});
  ExecOutcome B = execute(C, "beta", {21});
  ASSERT_TRUE(A.Run.ok() && B.Run.ok());
  EXPECT_NE(A.Run.Checksum, B.Run.Checksum);
}

TEST(PipelineTest, OneCompilationManyExecutions) {
  // A Compilation is immutable after compile(); executions are isolated
  // (fresh heap each) and deterministic.
  Compilation C = compile("func main(n int) {\n"
                          "  s := make([]int, n)\n"
                          "  for i := range s { s[i] = i }\n"
                          "  total := 0\n"
                          "  for _, v := range s { total += v }\n"
                          "  sink(total)\n"
                          "}\n",
                          {});
  ASSERT_TRUE(C.ok());
  ExecOutcome First = execute(C, "main", {100});
  for (int I = 0; I < 5; ++I) {
    ExecOutcome Again = execute(C, "main", {100});
    EXPECT_EQ(Again.Run.Checksum, First.Run.Checksum);
    EXPECT_EQ(Again.Stats.AllocCount, First.Stats.AllocCount);
  }
  ExecOutcome Different = execute(C, "main", {101});
  EXPECT_NE(Different.Run.Checksum, First.Run.Checksum);
}

TEST(PipelineTest, GoModeNeverRunsGoFreeRuntimeFrees) {
  CompileOptions CO;
  CO.Mode = CompileMode::Go;
  Compilation C = compile("func main() {\n"
                          "  m := make(map[int]int)\n"
                          "  for i := 0; i < 5000; i++ { m[i] = i }\n"
                          "  sink(len(m))\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  // Even if the caller asks for the GoFree runtime knobs, Go mode strips
  // them: stock Go has no tcfree at all.
  ExecOptions EO;
  EO.Interp.Map.GrowFreeOld = true;
  EO.Interp.Slice.FreeOldOnGrow = true;
  ExecOutcome O = execute(C, "main", {}, EO);
  ASSERT_TRUE(O.Run.ok());
  EXPECT_EQ(O.Stats.TcfreeCalls, 0u);
  EXPECT_EQ(O.Stats.tcfreeFreedBytes(), 0u);
}

TEST(PipelineTest, WallSecondsAndStatsPopulated) {
  // Variable size keeps the slice on the heap so allocation stats move.
  Compilation C = compile("func main(n int) {\n"
                          "  s := make([]int, n)\n"
                          "  sink(len(s))\n"
                          "}\n",
                          {});
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main", {1000});
  EXPECT_GT(O.WallSeconds, 0.0);
  EXPECT_GT(O.Stats.AllocedBytes, 0u);
  EXPECT_EQ(O.Run.SinkCount, 1u);
}
