//===- tests/InstrumentTest.cpp - tcfree insertion tests ------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Verifies where the instrumentation pass splices tcfree calls (section
// 4.5): end of the declaration scope, before safe trailing terminators,
// after captured return values, and never where the scope tail could read
// the freed object.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "minigo/AstPrinter.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;
using namespace gofree::minigo;

namespace {

struct Instrumented {
  Compilation C;
  std::string Printed;
};

Instrumented instrumentSrc(const std::string &Src) {
  Instrumented Out;
  Out.C = compile(Src, {});
  EXPECT_TRUE(Out.C.ok()) << Out.C.Errors;
  if (Out.C.ok())
    Out.Printed = printProgram(*Out.C.Prog);
  return Out;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + 1))
    ++Count;
  return Count;
}

} // namespace

TEST(InstrumentTest, FreesAtScopeEnd) {
  Instrumented I = instrumentSrc("func f(n int) {\n"
                              "  s := make([]int, n)\n"
                              "  s[0] = 1\n"
                              "  sink(s[0])\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  // The tcfree is the last statement of the body.
  size_t FreePos = I.Printed.find("tcfreeSlice(s)");
  size_t SinkPos = I.Printed.find("sink(");
  ASSERT_NE(FreePos, std::string::npos);
  EXPECT_LT(SinkPos, FreePos);
}

TEST(InstrumentTest, InnerScopeFreesBeforeOuter) {
  Instrumented I = instrumentSrc("func f(n int) {\n"
                              "  a := make([]int, n)\n"
                              "  {\n"
                              "    b := make([]int, n)\n"
                              "    sink(b[0])\n"
                              "  }\n"
                              "  sink(a[0])\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 2u);
  EXPECT_LT(I.Printed.find("tcfreeSlice(b)"),
            I.Printed.find("tcfreeSlice(a)"));
}

TEST(InstrumentTest, LoopBodyFreesEveryIteration) {
  Instrumented I = instrumentSrc("func f(n int) {\n"
                              "  for i := 0; i < n; i = i + 1 {\n"
                              "    s := make([]int, i + 1)\n"
                              "    sink(s[0])\n"
                              "  }\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  // Inside the loop body, i.e. before the loop's closing brace and after
  // the sink.
  EXPECT_LT(I.Printed.find("sink("), I.Printed.find("tcfreeSlice(s)"));
}

TEST(InstrumentTest, HoistsAboveScalarReturn) {
  Instrumented I = instrumentSrc("func f(n int) int {\n"
                              "  s := make([]int, n)\n"
                              "  s[0] = n\n"
                              "  total := s[0]\n"
                              "  return total\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  EXPECT_EQ(I.C.Instr.SkippedUnsafeTail, 0u);
  EXPECT_LT(I.Printed.find("tcfreeSlice(s)"), I.Printed.find("return total"));
}

TEST(InstrumentTest, SplitsMemoryReadingReturn) {
  // `return s2[0]` reads memory, so the return value is captured into a
  // temp first, then the frees run, then the return.
  Instrumented I = instrumentSrc("func f(n int) int {\n"
                              "  s := make([]int, n)\n"
                              "  s[0] = n * 2\n"
                              "  return s[0] + 1\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  size_t TempPos = I.Printed.find("__gofree_rv");
  size_t FreePos = I.Printed.find("tcfreeSlice(s)");
  ASSERT_NE(TempPos, std::string::npos);
  ASSERT_NE(FreePos, std::string::npos);
  EXPECT_LT(TempPos, FreePos) << "value captured before the free";
  // The return must now return the temp, not re-read the slice.
  EXPECT_EQ(countOccurrences(I.Printed, "return __gofree_rv"), 1u);
}

TEST(InstrumentTest, SplitReturnPreservesSemantics) {
  const char *Src = "func f(n int) int {\n"
                    "  s := make([]int, n)\n"
                    "  s[0] = n * 2\n"
                    "  return s[0] + 1\n"
                    "}\n"
                    "func main(n int) {\n"
                    "  sink(f(n))\n"
                    "}\n";
  Compilation Go = compile(Src, CompileOptions{CompileMode::Go,
                                               escape::FreeTargets::SlicesAndMaps,
                                               {},
                                               {}});
  Compilation Free = compile(Src, {});
  ExecOutcome A = execute(Go, "main", {7});
  ExecOutcome B = execute(Free, "main", {7});
  ASSERT_TRUE(A.Run.ok() && B.Run.ok());
  EXPECT_EQ(A.Run.Checksum, B.Run.Checksum);
  EXPECT_GT(B.Stats.tcfreeFreedBytes(), 0u);
}

TEST(InstrumentTest, MultiValueReturnIsSplit) {
  Instrumented I = instrumentSrc("func f(n int) (int, int) {\n"
                              "  s := make([]int, n)\n"
                              "  s[0] = 4\n"
                              "  return s[0], s[0] * 2\n"
                              "}\n"
                              "func main(n int) {\n"
                              "  a, b := f(n)\n"
                              "  sink(a + b)\n"
                              "}\n");
  EXPECT_GE(I.C.Instr.SliceFrees, 1u);
  EXPECT_EQ(countOccurrences(I.Printed, "__gofree_rv"), 4u)
      << "two temps: declared once, returned once each";
}

TEST(InstrumentTest, ForInitVarFreedAfterLoop) {
  Instrumented I = instrumentSrc(
      "func f(n int) {\n"
      "  for s := make([]int, n); len(s) > 0; s = append(s, 1) {\n"
      "    sink(s[0])\n"
      "    if len(s) > 3 { break }\n"
      "  }\n"
      "}\n");
  // The for-init slice's scope is the whole loop: freed after it.
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  size_t LoopEnd = I.Printed.rfind("}");
  size_t FreePos = I.Printed.find("tcfreeSlice(s)");
  ASSERT_NE(FreePos, std::string::npos);
  EXPECT_LT(FreePos, LoopEnd);
}

TEST(InstrumentTest, GoModeInsertsNothing) {
  CompileOptions CO;
  CO.Mode = CompileMode::Go;
  Compilation C = compile("func f(n int) {\n"
                          "  s := make([]int, n)\n"
                          "  sink(s[0])\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(C.Instr.total(), 0u);
  EXPECT_EQ(printProgram(*C.Prog).find("tcfree"), std::string::npos);
}

TEST(InstrumentTest, KindMatchesType) {
  Instrumented I = instrumentSrc("type T struct { v int\n }\n"
                              "func mk(n int) *T {\n"
                              "  t := new(T)\n"
                              "  t.v = n\n"
                              "  return t\n"
                              "}\n"
                              "func f(n int) {\n"
                              "  s := make([]int, n)\n"
                              "  m := make(map[int]int, n)\n"
                              "  s[0] = 1\n"
                              "  m[1] = 2\n"
                              "  sink(s[0] + m[1])\n"
                              "}\n");
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  EXPECT_EQ(I.C.Instr.MapFrees, 1u);
  // Pointers are excluded by default (section 6.5).
  EXPECT_EQ(I.C.Instr.ObjectFrees, 0u);
  EXPECT_NE(I.Printed.find("tcfreeSlice(s)"), std::string::npos);
  EXPECT_NE(I.Printed.find("tcfreeMap(m)"), std::string::npos);
}

TEST(InstrumentTest, PanicTailBlocksUnsafeFrees) {
  Instrumented I = instrumentSrc("func f(n int) {\n"
                              "  s := make([]int, n)\n"
                              "  s[0] = 3\n"
                              "  panic(s[0])\n"
                              "}\n");
  // panic(s[0]) reads the slice; the free must be skipped, not hoisted.
  EXPECT_EQ(I.C.Instr.SliceFrees, 0u);
  EXPECT_EQ(I.C.Instr.SkippedUnsafeTail, 1u);
}

// Regression: a panic tail only suppresses frees in ITS scope. Sibling
// declarations in enclosing scopes keep their tcfrees at the enclosing
// scope's end (the panic branch simply never reaches them at runtime).
TEST(InstrumentTest, PanicTailOnlySkipsItsOwnScope) {
  Instrumented I = instrumentSrc("func f(n int) int {\n"
                              "  kept := make([]int, n)\n"
                              "  kept[0] = n\n"
                              "  if n < 0 {\n"
                              "    bad := make([]int, n + 2)\n"
                              "    bad[0] = n\n"
                              "    panic(bad[0])\n"
                              "  }\n"
                              "  return kept[0]\n"
                              "}\n");
  // `bad` is skipped (its scope tail panics with a read of it); `kept`
  // still gets a free in the enclosing function scope.
  EXPECT_EQ(I.C.Instr.SkippedUnsafeTail, 1u);
  EXPECT_EQ(I.C.Instr.SliceFrees, 1u);
  EXPECT_NE(I.Printed.find("tcfreeSlice(kept)"), std::string::npos);
  EXPECT_EQ(I.Printed.find("tcfreeSlice(bad)"), std::string::npos);
}
