//===- tests/FuzzTest.cpp - Differential fuzzing subsystem tests ----------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/fuzz: the generator emits deterministic, well-typed
/// programs; the differ classifies clean runs, fuel exhaustion, frontend
/// rejections, and real divergences; the reducer shrinks under a
/// predicate; heap-invariant verification accepts a live heap; and -- the
/// one that proves the whole loop works -- a mutation test: with
/// GOFREE_FUZZ_UNSOUND injecting an unsound escape-analysis decision, the
/// campaign must catch the bug within the smoke budget and reduce it to a
/// small (<= 30 line) reproducer that diffs clean again once the
/// injection is off.
///
//===----------------------------------------------------------------------===//

#include "compiler/Driver.h"
#include "fuzz/Differ.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Reducer.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

using namespace gofree;
using namespace gofree::fuzz;

namespace {

int lineCount(const std::string &S) {
  int N = 0;
  std::istringstream In(S);
  std::string Line;
  while (std::getline(In, Line))
    ++N;
  return N;
}

/// Scoped environment-variable setter for the mutation test.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    ::setenv(Name, Value, 1);
  }
  ~ScopedEnv() { ::unsetenv(Name); }

private:
  const char *Name;
};

} // namespace

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(ProgramGenTest, Deterministic) {
  GenOptions G = genOptionsForSeed(7);
  EXPECT_EQ(generateProgram(G), generateProgram(G));
}

TEST(ProgramGenTest, SeedsProduceDistinctPrograms) {
  EXPECT_NE(generateProgram(genOptionsForSeed(1)),
            generateProgram(genOptionsForSeed(2)));
}

TEST(ProgramGenTest, AllOptionsOffStillGenerates) {
  GenOptions G;
  G.Seed = 3;
  G.UseMaps = G.UseStructs = G.UsePointers = G.UseDefer = G.UsePanic = false;
  std::string Src = generateProgram(G);
  EXPECT_NE(Src.find("func main(n int)"), std::string::npos);
  EXPECT_EQ(Src.find("map["), std::string::npos);
  EXPECT_EQ(Src.find("defer"), std::string::npos);
  EXPECT_EQ(Src.find("panic"), std::string::npos);
}

TEST(ProgramGenTest, CompilesUnderBothPipelines) {
  // The differ treats a frontend rejection as a generator bug; enforce
  // that directly for a band of seeds in both modes.
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    std::string Src = generateProgram(genOptionsForSeed(Seed));
    for (const char *Mode : {"--mode=go", "--mode=gofree"}) {
      compiler::driver::PipelineOptions P;
      std::string Err;
      ASSERT_TRUE(compiler::driver::parseFlags({Mode}, P, &Err)) << Err;
      compiler::Compilation C = compiler::compile(Src, P.Compile);
      ASSERT_TRUE(C.ok()) << "seed " << Seed << " under " << Mode << ":\n"
                          << C.Errors << "\n"
                          << Src;
    }
  }
}

//===----------------------------------------------------------------------===//
// Differ
//===----------------------------------------------------------------------===//

TEST(DifferTest, StandardLegMatrix) {
  DiffOptions O;
  std::vector<LegResult> Legs = standardLegs(O);
  ASSERT_GE(Legs.size(), 7u);
  // The reference leg must come first; the MT leg must carry its factor.
  EXPECT_EQ(Legs.front().Name, "go");
  bool SawMt = false, SawZero = false, SawFlip = false;
  for (const LegResult &L : Legs) {
    if (L.Factor > 1) {
      SawMt = true;
      EXPECT_EQ(L.Factor, O.MtThreads);
    }
    for (const std::string &F : L.Flags) {
      if (F == "--mock=zero")
        SawZero = true;
      if (F == "--mock=flip")
        SawFlip = true;
    }
  }
  EXPECT_TRUE(SawMt);
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(SawFlip);
}

TEST(DifferTest, CleanSeedsDiffOk) {
  for (uint64_t Seed : {1, 2, 5}) {
    std::string Src = generateProgram(genOptionsForSeed(Seed));
    DiffResult R = diffProgram(Src, diffOptionsForSeed(Seed, 2));
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Failure;
    EXPECT_EQ(R.Status, DiffStatus::Ok) << "seed " << Seed << ": " << R.Failure;
  }
}

TEST(DifferTest, TinyFuelIsSkippedNotFailed) {
  DiffOptions O = diffOptionsForSeed(1, 2);
  O.MaxSteps = 50;
  DiffResult R = diffProgram(generateProgram(genOptionsForSeed(1)), O);
  EXPECT_EQ(R.Status, DiffStatus::FuelSkipped) << R.Failure;
  EXPECT_TRUE(R.ok());
}

TEST(DifferTest, FrontendRejectionIsClassified) {
  DiffResult R = diffProgram("func main(", diffOptionsForSeed(1, 0));
  EXPECT_EQ(R.Status, DiffStatus::FrontendRejected);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Failure.empty());
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(ReducerTest, RemovesIrrelevantLinesAndBlocks) {
  // Synthetic predicate: "fails" while the marker line survives. The
  // reducer should strip everything else, including whole blocks and the
  // wrappers around the marker.
  std::string Src = "a := 1\n"
                    "if a > 0 {\n"
                    "  b := 2\n"
                    "  sink(b)\n"
                    "}\n"
                    "for i := 0; i < 3; i = i + 1 {\n"
                    "  MARKER\n"
                    "}\n"
                    "c := 3\n"
                    "sink(c)\n";
  auto StillFails = [](const std::string &S) {
    return S.find("MARKER") != std::string::npos;
  };
  std::string Out = reduceProgram(Src, StillFails);
  EXPECT_TRUE(StillFails(Out));
  EXPECT_LE(lineCount(Out), 2); // MARKER, possibly one wrapper remnant.
  EXPECT_EQ(Out.find("sink"), std::string::npos);
}

TEST(ReducerTest, RespectsAttemptBudget) {
  std::string Src;
  for (int I = 0; I < 200; ++I)
    Src += "line" + std::to_string(I) + "\n";
  int Calls = 0;
  ReduceOptions RO;
  RO.MaxAttempts = 10;
  std::string Out = reduceProgram(
      Src,
      [&](const std::string &) {
        ++Calls;
        return true; // Everything "fails": reduction would go to 1 line.
      },
      RO);
  EXPECT_LE(Calls, 10 + 1);
  EXPECT_GT(lineCount(Out), 1); // Budget stopped it early.
}

//===----------------------------------------------------------------------===//
// Heap invariant verification
//===----------------------------------------------------------------------===//

TEST(HeapVerifyTest, LiveHeapPassesVerification) {
  rt::HeapOptions HO;
  HO.Gc.Verify = true;
  rt::Heap H(HO);
  std::vector<uintptr_t> Objs;
  for (int I = 0; I < 200; ++I)
    Objs.push_back(H.allocate(16 + 8 * (I % 13), nullptr,
                              rt::AllocCat::Other, 0));
  // Free some through the tcfree path, then re-verify: freed slots must
  // not break the span accounting.
  for (size_t I = 0; I < Objs.size(); I += 3)
    H.tcfreeObject(Objs[I], 0, rt::FreeSource::TcfreeObject);
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  EXPECT_TRUE(H.invariantFailure().empty()) << H.invariantFailure();
}

//===----------------------------------------------------------------------===//
// End-to-end campaigns
//===----------------------------------------------------------------------===//

TEST(FuzzCampaignTest, CleanCampaignPasses) {
  FuzzOptions FO;
  FO.Seed = 1;
  FO.Count = 10;
  FO.MtThreads = 2;
  FuzzReport R = runFuzz(FO);
  EXPECT_TRUE(R.ok()) << "seed " << R.FailingSeed << ": " << R.Failure << "\n"
                      << R.FailingProgram;
  EXPECT_EQ(R.Ran, 10);
  EXPECT_EQ(R.Passed + R.FuelSkipped, 10);
}

TEST(FuzzCampaignTest, MutationTestCatchesInjectedUnsoundness) {
  // The escape solver honors GOFREE_FUZZ_UNSOUND by skipping the Outlived
  // check (src/escape/Solver.cpp), i.e. it deliberately frees escaping
  // allocations. The differential campaign must catch that within the
  // smoke budget and reduce it to a small reproducer.
  FuzzReport R;
  {
    ScopedEnv Env("GOFREE_FUZZ_UNSOUND", "1");
    FuzzOptions FO;
    FO.Seed = 1;
    FO.Count = 40;
    FO.MtThreads = 2;
    FO.Reduce = true;
    R = runFuzz(FO);
    EXPECT_GT(R.Failures, 0) << "injected bug not caught in 40 seeds";
    EXPECT_EQ(R.FrontendRejected, 0);
    ASSERT_FALSE(R.Reduced.empty());
    EXPECT_LE(lineCount(R.Reduced), 30)
        << "reducer left a large reproducer:\n"
        << R.Reduced;
    // The reproducer itself must still fail under the injection.
    DiffResult Still =
        diffProgram(R.Reduced, diffOptionsForSeed(R.FailingSeed, 2));
    EXPECT_EQ(Still.Status, DiffStatus::Mismatch) << Still.Failure;
  }
  // Injection off: the same reproducer must diff clean, proving the
  // failure was the injected unsoundness and not a generator artifact.
  DiffResult Clean =
      diffProgram(R.Reduced, diffOptionsForSeed(R.FailingSeed, 2));
  EXPECT_TRUE(Clean.ok()) << Clean.Failure;
}
