//===- tests/SlicingTest.cpp - s[lo:hi] and copy() tests ------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Slice expressions and copy() interact with everything GoFree cares
// about: sub-slices alias the backing array (so freeing through one must
// be blocked when another lives longer), interior data pointers must keep
// whole arrays alive in the GC, and copy() of pointer elements is an
// untracked indirect store.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "escape/Analysis.h"
#include "minigo/Frontend.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;

namespace {

uint64_t runChecksum(const std::string &Src, CompileMode Mode,
                     const std::vector<int64_t> &Args = {}) {
  CompileOptions CO;
  CO.Mode = Mode;
  Compilation C = compile(Src, CO);
  EXPECT_TRUE(C.ok()) << C.Errors;
  ExecOutcome O = execute(C, "main", Args);
  EXPECT_TRUE(O.Run.ok()) << O.Run.Error;
  return O.Run.Checksum;
}

uint64_t checksum(const std::string &Src,
                  const std::vector<int64_t> &Args = {}) {
  uint64_t Go = runChecksum(Src, CompileMode::Go, Args);
  uint64_t Free = runChecksum(Src, CompileMode::GoFree, Args);
  EXPECT_EQ(Go, Free) << "mode divergence";
  return Free;
}

} // namespace

TEST(SlicingTest, BasicSubslice) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 10)\n"
                     "  for i := 0; i < 10; i = i + 1 { s[i] = i }\n"
                     "  t := s[2:5]\n"
                     "  sink(len(t))\n"
                     "  sink(t[0] + t[2])\n"
                     "  sink(cap(t))\n"
                     "}\n"),
            checksum("func main() {\n  sink(3)\n  sink(6)\n  sink(8)\n}\n"));
}

TEST(SlicingTest, DefaultBounds) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 6)\n"
                     "  s[5] = 9\n"
                     "  a := s[:3]\n"
                     "  b := s[3:]\n"
                     "  c := s[:]\n"
                     "  sink(len(a) + len(b)*10 + len(c)*100)\n"
                     "  sink(b[2])\n"
                     "}\n"),
            checksum("func main() {\n  sink(633)\n  sink(9)\n}\n"));
}

TEST(SlicingTest, SubsliceSharesBackingArray) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 8)\n"
                     "  t := s[2:6]\n"
                     "  t[0] = 42\n"
                     "  sink(s[2])\n" // Writes through t are visible in s.
                     "}\n"),
            checksum("func main() {\n  sink(42)\n}\n"));
}

TEST(SlicingTest, BoundsChecked) {
  CompileOptions CO;
  Compilation C = compile("func main() {\n"
                          "  s := make([]int, 4)\n"
                          "  x := 6\n"
                          "  t := s[2:x]\n"
                          "  sink(len(t))\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main");
  EXPECT_NE(O.Run.Error.find("slice bounds"), std::string::npos);
}

TEST(SlicingTest, SlicingUpToCapIsLegal) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 2, 8)\n"
                     "  t := s[:8]\n" // Go allows extending up to cap.
                     "  t[7] = 5\n"
                     "  sink(len(t) + t[7])\n"
                     "}\n"),
            checksum("func main() {\n  sink(13)\n}\n"));
}

TEST(SlicingTest, CopyBasics) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  src := make([]int, 5)\n"
                     "  for i := 0; i < 5; i = i + 1 { src[i] = i * 3 }\n"
                     "  dst := make([]int, 3)\n"
                     "  n := copy(dst, src)\n" // min(3, 5) = 3
                     "  sink(n)\n"
                     "  sink(dst[0] + dst[1] + dst[2])\n"
                     "}\n"),
            checksum("func main() {\n  sink(3)\n  sink(9)\n}\n"));
}

TEST(SlicingTest, CopyWithOverlap) {
  // memmove semantics: shifting within one array must be safe.
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 6)\n"
                     "  for i := 0; i < 6; i = i + 1 { s[i] = i }\n"
                     "  n := copy(s[1:], s[:5])\n"
                     "  sink(n)\n"
                     "  sink(s[1]*1 + s[2]*10 + s[5]*100)\n" // 0,1,...,4
                     "}\n"),
            checksum("func main() {\n  sink(5)\n  sink(410)\n}\n"));
}

TEST(SlicingTest, InteriorPointerKeepsArrayAliveUnderGc) {
  // Only the sub-slice survives the scope; its interior data pointer must
  // keep the whole backing array alive through aggressive GC. Stock-Go
  // mode keeps the churn unfreed so collections actually fire.
  CompileOptions CO;
  CO.Mode = CompileMode::Go;
  Compilation C = compile("func window(n int) []int {\n"
                          "  s := make([]int, n)\n"
                          "  for i := 0; i < n; i = i + 1 { s[i] = i }\n"
                          "  return s[n/2 : n/2+3]\n"
                          "}\n"
                          "func main(n int) {\n"
                          "  w := window(n)\n"
                          "  churn := 0\n"
                          "  for i := 0; i < 2000; i = i + 1 {\n"
                          "    tmp := make([]int, i%50 + 10)\n"
                          "    tmp[0] = i\n"
                          "    churn = churn + tmp[0]\n"
                          "  }\n"
                          "  sink(w[0] + w[1] + w[2] + churn%7)\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  ExecOptions Tight;
  Tight.Heap.Gc.MinHeapTrigger = 16 * 1024;
  ExecOutcome O = execute(C, "main", {100}, Tight);
  ASSERT_TRUE(O.Run.ok()) << O.Run.Error;
  EXPECT_GT(O.Stats.GcCycles, 0u);
  // 50 + 51 + 52 = 153, plus churn%7.
  ExecOutcome Ref = execute(C, "main", {100});
  EXPECT_EQ(O.Run.Checksum, Ref.Run.Checksum);
}

//===----------------------------------------------------------------------===//
// Escape-analysis interactions
//===----------------------------------------------------------------------===//

TEST(SlicingEscapeTest, SubsliceAliasBlocksFreeAcrossScopes) {
  DiagSink Diags;
  auto Prog = minigo::parseAndCheck("func f(n int) {\n"
                                    "  var keep []int\n"
                                    "  {\n"
                                    "    s := make([]int, n)\n"
                                    "    keep = s[1:3]\n"
                                    "  }\n"
                                    "  sink(keep[0])\n"
                                    "}\n",
                                    Diags);
  ASSERT_NE(Prog, nullptr) << Diags.dump();
  escape::ProgramAnalysis A = escape::analyzeProgram(*Prog);
  const minigo::FuncDecl *Fn = Prog->findFunc("f");
  const minigo::VarDecl *S = nullptr;
  for (const minigo::VarDecl *V : Fn->AllVars)
    if (V->Name == "s")
      S = V;
  ASSERT_NE(S, nullptr);
  EXPECT_FALSE(A.ToFreeVars.count(S))
      << "the sub-slice alias outlives s's scope";
}

TEST(SlicingEscapeTest, LocalSubsliceStillFreeable) {
  Compilation C = compile("func f(n int) {\n"
                          "  s := make([]int, n)\n"
                          "  t := s[0 : n/2]\n"
                          "  t[0] = 1\n"
                          "  sink(t[0] + s[0])\n"
                          "}\n"
                          "func main(n int) {\n  f(n)\n}\n",
                          {});
  ASSERT_TRUE(C.ok());
  EXPECT_GE(C.Instr.SliceFrees, 1u);
  ExecOutcome O = execute(C, "main", {50});
  ASSERT_TRUE(O.Run.ok());
  EXPECT_GT(O.Stats.tcfreeFreedBytes(), 0u);
}

TEST(SlicingEscapeTest, CopyOfPointersBlocksSourceElementFreeing) {
  // copy(dst, src) with pointer elements is an untracked indirect store:
  // dst's contents become incomplete (but this must not crash or misfree).
  const char *Src = "type T struct { v int\n }\n"
                    "func main(n int) {\n"
                    "  src := make([]*T, 4)\n"
                    "  for i := 0; i < 4; i = i + 1 {\n"
                    "    src[i] = &T{v: i}\n"
                    "  }\n"
                    "  dst := make([]*T, 4)\n"
                    "  sink(copy(dst, src))\n"
                    "  sink(dst[2].v)\n"
                    "}\n";
  uint64_t Go = runChecksum(Src, CompileMode::Go, {1});
  uint64_t Free = runChecksum(Src, CompileMode::GoFree, {1});
  EXPECT_EQ(Go, Free);
}

TEST(SlicingEscapeTest, ModeEquivalenceOnSlicingHeavyProgram) {
  const char *Src = "func sum(s []int) int {\n"
                    "  t := 0\n"
                    "  for i := 0; i < len(s); i = i + 1 { t = t + s[i] }\n"
                    "  return t\n"
                    "}\n"
                    "func main(n int) {\n"
                    "  acc := 0\n"
                    "  for r := 4; r < n; r = r + 1 {\n"
                    "    buf := make([]int, r)\n"
                    "    for i := 0; i < r; i = i + 1 { buf[i] = i }\n"
                    "    head := buf[:r/2]\n"
                    "    tail := buf[r/2:]\n"
                    "    acc = acc + sum(head) - sum(tail)\n"
                    "    scratch := make([]int, r)\n"
                    "    acc = acc + copy(scratch, tail)\n"
                    "  }\n"
                    "  sink(acc)\n"
                    "}\n";
  uint64_t Go = runChecksum(Src, CompileMode::Go, {200});
  uint64_t Free = runChecksum(Src, CompileMode::GoFree, {200});
  EXPECT_EQ(Go, Free);
}
