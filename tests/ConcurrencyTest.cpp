//===- tests/ConcurrencyTest.cpp - Multi-threaded heap torture suite ------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Stress tests for the concurrent heap: real mutator threads, the
// safepointed stop-the-world handshake, tcfree under contention (including
// the mock-poison robustness mode), and the parallel execution pipeline.
// The suite is meant to run under ThreadSanitizer (ctest label tsan_smoke);
// every cross-thread access below is synchronized the same way production
// code is -- by the park handshake, by joins, or by the trace hub's locks.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "runtime/Heap.h"
#include "runtime/SizeClasses.h"
#include "runtime/WordAccess.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace gofree;
using namespace gofree::rt;

namespace {

/// One mutator thread's live set, doubling as its GC root provider. The
/// owning thread mutates Objs between safepoints; the collector reads it
/// only while the world is stopped (the park handshake orders the two),
/// and the main thread reads it only after join.
class RetainedRoots : public RootScanner {
public:
  struct Obj {
    uintptr_t Addr;
    size_t Bytes;
    uint64_t Pattern;
  };
  std::vector<Obj> Objs;

  void scanRoots(Heap &H) override {
    for (const Obj &O : Objs)
      H.gcMarkAddr(O.Addr);
  }
};

/// Globally unique fill pattern: thread id in the top bits, serial below.
uint64_t patternFor(int Tid, uint64_t Serial) {
  return ((uint64_t)(unsigned)Tid << 48) | (Serial & 0xffffffffffffull);
}

void writePattern(uintptr_t Addr, size_t Bytes, uint64_t Pattern) {
  auto *P = reinterpret_cast<uint64_t *>(Addr);
  for (size_t I = 0; I < Bytes / 8; ++I)
    P[I] = Pattern;
}

bool checkPattern(uintptr_t Addr, size_t Bytes, uint64_t Pattern) {
  auto *P = reinterpret_cast<uint64_t *>(Addr);
  for (size_t I = 0; I < Bytes / 8; ++I)
    if (P[I] != Pattern)
      return false;
  return true;
}

/// Sizes cycle through several small classes plus the occasional dedicated
/// large span, so central-list refills, cache hand-offs, and the
/// TcfreeLarge dangling-span dance all happen under contention.
size_t sizeFor(uint64_t Serial) {
  if (Serial % 101 == 0)
    return MaxSmallSize + 64;
  return 16 + (Serial % 32) * 8;
}

} // namespace

//===----------------------------------------------------------------------===//
// Torture: alloc / verify / tcfree / forced + paced GC, mock poison on
//===----------------------------------------------------------------------===//

TEST(ConcurrencyTortureTest, MixedAllocFreeGcWithMockFlip) {
  HeapOptions HO;
  HO.NumCaches = 4;
  HO.Mock = MockTcfree::Flip;
  HO.Gc.MinHeapTrigger = 256 << 10; // Aggressive pacing: GC fires mid-stress.
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr uint64_t Iters = 4000;
  // Scanners are registered by the main thread for the whole stress run:
  // a worker that finished early must keep its survivors rooted while the
  // other workers' GC cycles run, or they are (correctly!) swept and their
  // spans recycled before the final checks. The collector reads a live
  // worker's list only while the world is stopped, and an exited worker's
  // final park-handshake orders its last writes before any later scan.
  std::vector<std::unique_ptr<RetainedRoots>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<RetainedRoots>());
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      RetainedRoots &R = *Roots[(size_t)T];
      {
        Heap::MutatorScope Scope(H, T);
        for (uint64_t I = 0; I < Iters; ++I) {
          size_t Bytes = sizeFor(I);
          uint64_t Pattern = patternFor(T, I);
          uintptr_t A = H.allocate(Bytes, nullptr, AllocCat::Other, T);
          ASSERT_NE(A, 0u);
          writePattern(A, Bytes, Pattern);
          R.Objs.push_back({A, Bytes, Pattern});
          // Keep a bounded live set: verify-then-free the oldest object.
          // tcfree's liveness contract (see Heap.h): the victim stays
          // rooted *across* the call -- a GC at the entry safepoint must
          // not be able to sweep it and hand its pages to another thread,
          // or a large-object tcfree would poison the new tenant. The
          // root entry is dropped only after tcfree returns.
          if (R.Objs.size() > 64) {
            RetainedRoots::Obj Victim = R.Objs.front();
            EXPECT_TRUE(checkPattern(Victim.Addr, Victim.Bytes,
                                     Victim.Pattern))
                << "live object corrupted before tcfree";
            H.tcfreeObject(Victim.Addr, T, FreeSource::TcfreeObject);
            R.Objs.erase(R.Objs.begin());
          }
          if (I % 1000 == 500)
            H.runGc(); // Forced cycles race the pacer and each other.
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Retained objects survived every GC and every mock poison un-flipped.
  for (auto &R : Roots)
    for (const RetainedRoots::Obj &O : R->Objs) {
      EXPECT_TRUE(H.isLiveObject(O.Addr));
      EXPECT_TRUE(checkPattern(O.Addr, O.Bytes, O.Pattern));
    }

  // No lost counts: every tcfree call landed in exactly one bucket --
  // a give-up reason, the mock bucket, or a freed-by-source count.
  StatsSnapshot S = H.stats().snap();
  uint64_t Accounted = 0;
  for (uint64_t C : S.TcfreeGiveUpsByReason)
    Accounted += C;
  for (uint64_t C : S.FreedCountBySource)
    Accounted += C;
  EXPECT_EQ(S.TcfreeCalls, Accounted);
  EXPECT_GT(S.TcfreeGiveUpsByReason[(int)trace::GiveUpReason::Mock], 0u)
      << "mock mode should have poisoned at least one object";
  // Mock mode never returns memory to the allocator.
  EXPECT_EQ(S.FreedCountBySource[(int)FreeSource::TcfreeObject], 0u);

  // Heap accounting invariants at quiesce.
  EXPECT_LE(H.stats().HeapLive.load(), H.stats().Committed.load());
  EXPECT_LE(S.tcfreeFreedBytes() + S.GcSweptBytes, S.AllocedBytes);
  EXPECT_LE(S.PeakLive, S.PeakCommitted);
  EXPECT_GE(S.GcCycles, 1u);
  EXPECT_TRUE(H.pageHeapConsistent());
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}

//===----------------------------------------------------------------------===//
// No double hand-out: unique patterns stay intact across reuse
//===----------------------------------------------------------------------===//

TEST(ConcurrencyTortureTest, NoDoubleHandoutAcrossThreads) {
  // Mode 2 of the threading model: concurrent mutators, no GC possible
  // (no scanner registered, nothing forces a cycle), no registration
  // needed. Real frees recycle slots, so any span handed to two caches at
  // once -- or any slot handed out twice -- shows up as a clobbered
  // pattern or a duplicated address.
  HeapOptions HO;
  HO.NumCaches = 4;
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr uint64_t Iters = 3000;
  std::vector<std::vector<RetainedRoots::Obj>> Retained((size_t)NumThreads);

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      std::vector<RetainedRoots::Obj> &Mine = Retained[(size_t)T];
      uint64_t Serial = 0;
      for (uint64_t I = 0; I < Iters; ++I) {
        size_t Bytes = sizeFor(I);
        uint64_t Pattern = patternFor(T, Serial++);
        uintptr_t A = H.allocate(Bytes, nullptr, AllocCat::Other, T);
        ASSERT_NE(A, 0u);
        writePattern(A, Bytes, Pattern);
        Mine.push_back({A, Bytes, Pattern});
        // Churn: verify-then-free the newest tail once the set grows. The
        // newest objects sit in the caller's current spans, so these frees
        // mostly succeed and their slots recycle while other threads
        // allocate; a give-up (span already handed back to the central
        // list) just leaks the object, which is tcfree's contract.
        if (Mine.size() >= 128) {
          for (size_t J = Mine.size() - 64; J < Mine.size(); ++J) {
            EXPECT_TRUE(
                checkPattern(Mine[J].Addr, Mine[J].Bytes, Mine[J].Pattern));
            H.tcfreeObject(Mine[J].Addr, T, FreeSource::TcfreeObject);
          }
          Mine.resize(Mine.size() - 64);
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Every surviving address is unique, live, and still carries the exact
  // pattern its allocator wrote.
  std::set<uintptr_t> Seen;
  for (auto &Mine : Retained)
    for (const RetainedRoots::Obj &O : Mine) {
      EXPECT_TRUE(Seen.insert(O.Addr).second)
          << "address handed out to two holders";
      EXPECT_TRUE(H.isLiveObject(O.Addr));
      EXPECT_TRUE(checkPattern(O.Addr, O.Bytes, O.Pattern));
    }
  EXPECT_TRUE(H.pageHeapConsistent());
}

//===----------------------------------------------------------------------===//
// Stop-the-world handshake under contention
//===----------------------------------------------------------------------===//

TEST(ConcurrencySafepointTest, ConcurrentForcedGcLosersPark) {
  // All threads force cycles at once. Losers of the GcMu race must park at
  // their safepoint (blocking there would deadlock the winner, which is
  // waiting for them) and return once the winner's cycle counts for them.
  HeapOptions HO;
  HO.NumCaches = 4;
  Heap H(HO);

  constexpr int NumThreads = 4;
  // Registered for the whole run, like the torture test: an early-exiting
  // worker's survivors must stay rooted through the stragglers' cycles.
  std::vector<std::unique_ptr<RetainedRoots>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<RetainedRoots>());
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      RetainedRoots &R = *Roots[(size_t)T];
      {
        Heap::MutatorScope Scope(H, T);
        for (int I = 0; I < 25; ++I) {
          for (int J = 0; J < 16; ++J) {
            size_t Bytes = 64;
            uint64_t Pattern = patternFor(T, (uint64_t)(I * 16 + J));
            uintptr_t A = H.allocate(Bytes, nullptr, AllocCat::Other, T);
            ASSERT_NE(A, 0u);
            writePattern(A, Bytes, Pattern);
            R.Objs.push_back({A, Bytes, Pattern});
          }
          H.runGc();
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  StatsSnapshot S = H.stats().snap();
  EXPECT_GE(S.GcCycles, 1u);
  // A shared cycle satisfies several forced calls, so cycles never exceed
  // the number of forcing calls.
  EXPECT_LE(S.GcCycles, (uint64_t)NumThreads * 25);
  for (auto &R : Roots)
    for (const RetainedRoots::Obj &O : R->Objs) {
      EXPECT_TRUE(H.isLiveObject(O.Addr));
      EXPECT_TRUE(checkPattern(O.Addr, O.Bytes, O.Pattern));
    }
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}

TEST(ConcurrencySafepointTest, MutatorScopeChurnDuringGc) {
  // Threads keep entering and leaving MutatorScope while a collector
  // repeatedly stops the world. Registration while stopped must fold the
  // newcomer into the quorum; deregistration must release a collector
  // waiting on the leaving thread. Completion is the assertion.
  HeapOptions HO;
  HO.NumCaches = 4;
  Heap H(HO);

  RetainedRoots GcRoots;
  std::thread Collector([&] {
    H.addRootScanner(&GcRoots);
    {
      Heap::MutatorScope Scope(H, 0);
      for (int I = 0; I < 60; ++I) {
        uintptr_t A = H.allocate(64, nullptr, AllocCat::Other, 0);
        ASSERT_NE(A, 0u);
        GcRoots.Objs.push_back({A, 64, 0});
        H.runGc();
      }
    }
    H.removeRootScanner(&GcRoots);
  });

  std::vector<std::thread> Churners;
  for (int T = 1; T <= 2; ++T) {
    Churners.emplace_back([&, T] {
      for (int I = 0; I < 40; ++I) {
        Heap::MutatorScope Scope(H, T);
        uintptr_t Objs[8];
        for (int J = 0; J < 8; ++J) {
          Objs[J] = H.allocate(48, nullptr, AllocCat::Other, T);
          ASSERT_NE(Objs[J], 0u);
        }
        H.tcfreeBatch(Objs, 8, T, FreeSource::TcfreeObject);
      }
    });
  }
  Collector.join();
  for (std::thread &Th : Churners)
    Th.join();
  EXPECT_GE(H.stats().snap().GcCycles, 1u);
}

//===----------------------------------------------------------------------===//
// Parallel pipeline: N workers, one heap, combined results
//===----------------------------------------------------------------------===//

TEST(ParallelPipelineTest, ChecksumScalesWithWorkerCount) {
  compiler::Compilation C = compiler::compile(
      "func main(n int) {\n"
      "  total := 0\n"
      "  for i := 0; i < n; i++ {\n"
      "    s := make([]int, 32)\n"
      "    for j := range s { s[j] = i + j }\n"
      "    for _, v := range s { total += v }\n"
      "  }\n"
      "  sink(total)\n"
      "}\n",
      {});
  ASSERT_TRUE(C.ok()) << C.Errors;

  compiler::ExecOutcome Single = compiler::execute(C, "main", {200});
  ASSERT_TRUE(Single.Run.ok()) << Single.Run.Error;

  trace::TraceHub Hub;
  compiler::ExecOptions EO;
  EO.NumThreads = 4;
  EO.Hub = &Hub;
  compiler::ExecOutcome Par = compiler::execute(C, "main", {200}, EO);
  ASSERT_TRUE(Par.Run.ok()) << Par.Run.Error;

  // Counters combine by wrapping addition across identical workers.
  EXPECT_EQ(Par.Run.Checksum, Single.Run.Checksum * 4);
  EXPECT_EQ(Par.Run.SinkCount, Single.Run.SinkCount * 4);
  EXPECT_EQ(Par.Run.Steps, Single.Run.Steps * 4);
  EXPECT_EQ(Par.Stats.AllocCount, Single.Stats.AllocCount * 4);

  // Each worker got its own hub sink, and their events merge into one
  // globally ordered stream.
  EXPECT_EQ(Hub.sinkCount(), 4u);
  std::vector<trace::Event> Merged = Hub.merge();
  EXPECT_FALSE(Merged.empty());
  for (size_t I = 1; I < Merged.size(); ++I)
    EXPECT_LE(Merged[I - 1].TimeNs, Merged[I].TimeNs);
}

//===----------------------------------------------------------------------===//
// TraceHub: per-thread sinks merge into one ordered stream
//===----------------------------------------------------------------------===//

TEST(TraceHubTest, ParallelEmittersMergeOrdered) {
  trace::TraceHub Hub;
  constexpr int NumThreads = 4;
  constexpr uint64_t PerThread = 2000;

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      trace::TraceSink *Sink = Hub.makeSink();
      for (uint64_t I = 0; I < PerThread; ++I)
        Sink->emit(trace::EventKind::HeapAlloc, (uint8_t)T, I);
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Hub.sinkCount(), (size_t)NumThreads);
  EXPECT_EQ(Hub.dropped(), 0u);
  std::vector<trace::Event> Merged = Hub.merge();
  ASSERT_EQ(Merged.size(), (size_t)NumThreads * PerThread);
  uint64_t PerSource[NumThreads] = {};
  for (size_t I = 0; I < Merged.size(); ++I) {
    if (I > 0) {
      EXPECT_LE(Merged[I - 1].TimeNs, Merged[I].TimeNs);
    }
    ASSERT_LT(Merged[I].Arg, NumThreads);
    // Within one producer, merge preserves program order (stable sort on a
    // shared epoch), so serials arrive ascending per source.
    EXPECT_EQ(Merged[I].V0, PerSource[Merged[I].Arg]++);
  }
}

//===----------------------------------------------------------------------===//
// Parallel mark workers + lazy sweeping under real mutator contention
//===----------------------------------------------------------------------===//

namespace {
/// {3 pattern words, next}: chain nodes for the parallel-mark torture. The
/// mark workers must chase these chains concurrently, stealing chunks from
/// each other when their own stacks run dry.
const TypeDesc *chainNodeDesc() {
  static const TypeDesc D{"chainnode", 32, false, nullptr,
                          {{24, SlotKind::Raw}}};
  return &D;
}
} // namespace

TEST(ConcurrencyGcWorkersTest, ParallelMarkTortureKeepsChainsAlive) {
  // Four mutators race four mark workers: each thread builds linked chains
  // and roots only the heads, so every interior node's liveness depends on
  // the parallel mark phase tracing it -- a missed mark, a torn mark bit,
  // or a botched steal shows up as a dead or clobbered chain node. Forced
  // cycles from non-solo threads sweep lazily, so mutators also race the
  // refill/credit sweep paths the whole time.
  HeapOptions HO;
  HO.NumCaches = 4;
  HO.Gc.Workers = 4;
  HO.Gc.MinHeapTrigger = 256 << 10;
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr int NumChains = 40;
  constexpr int ChainLen = 64;

  std::vector<std::unique_ptr<RetainedRoots>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<RetainedRoots>());
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      RetainedRoots &R = *Roots[(size_t)T];
      Heap::MutatorScope Scope(H, T);
      uint64_t Serial = 0;
      for (int C = 0; C < NumChains; ++C) {
        // The chain must be rooted *while under construction*: another
        // thread's GC can stop us at any allocation safepoint, and an
        // unrooted partial chain would (correctly) be swept and its slots
        // recycled into later nodes, aliasing the chain onto itself. So
        // the entry goes in first and tracks the growing head; only this
        // thread writes it, and the collector reads it only while this
        // thread is parked.
        R.Objs.push_back({0, 24, 0});
        uintptr_t Head = 0;
        for (int I = 0; I < ChainLen; ++I) {
          uintptr_t N = H.allocate(32, chainNodeDesc(), AllocCat::Other, T);
          ASSERT_NE(N, 0u);
          uint64_t Pattern = patternFor(T, Serial++);
          writePattern(N, 24, Pattern);
          std::memcpy(reinterpret_cast<void *>(N + 24), &Head, 8);
          Head = N;
          R.Objs.back() = {Head, 24, Pattern};
          // Interleaved garbage: every chain node comes with an unrooted
          // sibling for the lazy and STW sweeps to reclaim.
          H.allocate(48, nullptr, AllocCat::Other, T);
        }
        // From here the entry roots the finished head; the other 63 nodes
        // live or die by the mark phase tracing the chain.
        if (C % 8 == 4)
          H.runGc();
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Walk every retained chain: all ChainLen nodes must still be there.
  for (auto &R : Roots)
    for (const RetainedRoots::Obj &O : R->Objs) {
      EXPECT_TRUE(checkPattern(O.Addr, O.Bytes, O.Pattern));
      uintptr_t N = O.Addr;
      int Len = 0;
      while (N != 0 && Len <= ChainLen) {
        ASSERT_TRUE(H.isLiveObject(N)) << "chain node swept at depth " << Len;
        ++Len;
        std::memcpy(&N, reinterpret_cast<void *>(N + 24), 8);
      }
      EXPECT_EQ(Len, ChainLen);
    }

  EXPECT_GE(H.stats().snap().GcCycles, 1u);
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  EXPECT_TRUE(H.pageHeapConsistent());
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}

TEST(ConcurrencyGcWorkersTest, LazySweepNeverDoubleCountsBytes) {
  // Spans get swept concurrently from cache refills, the owner fast path,
  // tcfree, and the allocation slow path's sweep credit. The SweepGen CAS
  // must hand each span to exactly one sweeper: a double sweep counts
  // GcSweptBytes twice and drives HeapLive negative, a lost span strands
  // bytes forever. After the dust settles, the books must balance to the
  // exact byte: everything ever allocated is still live, was tcfreed, or
  // was swept -- once.
  HeapOptions HO;
  HO.NumCaches = 4;
  HO.Gc.Workers = 2;
  HO.Gc.MinHeapTrigger = 128 << 10;
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr uint64_t Iters = 4000;
  std::vector<std::unique_ptr<RetainedRoots>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<RetainedRoots>());
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      RetainedRoots &R = *Roots[(size_t)T];
      Heap::MutatorScope Scope(H, T);
      for (uint64_t I = 0; I < Iters; ++I) {
        size_t Bytes = sizeFor(I);
        uint64_t Pattern = patternFor(T, I);
        uintptr_t A = H.allocate(Bytes, nullptr, AllocCat::Other, T);
        ASSERT_NE(A, 0u);
        writePattern(A, Bytes, Pattern);
        R.Objs.push_back({A, Bytes, Pattern});
        if (R.Objs.size() > 48) {
          // Half the overflow is tcfreed, half dropped for the GC: both
          // reclamation paths stay busy against the paced lazy cycles.
          RetainedRoots::Obj Victim = R.Objs.front();
          EXPECT_TRUE(checkPattern(Victim.Addr, Victim.Bytes, Victim.Pattern));
          if (I % 2 == 0)
            H.tcfreeObject(Victim.Addr, T, FreeSource::TcfreeObject);
          R.Objs.erase(R.Objs.begin());
        }
        if (I % 1500 == 750)
          H.runGc();
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Quiesce: a solo forced cycle sweeps eagerly, so no debt remains and
  // only the rooted survivors count as live.
  H.runGc();
  ASSERT_EQ(H.unsweptSpanCount(), 0u);
  StatsSnapshot S = H.stats().snap();
  uint64_t LiveExpected = 0;
  for (auto &R : Roots)
    for (const RetainedRoots::Obj &O : R->Objs) {
      EXPECT_TRUE(H.isLiveObject(O.Addr));
      EXPECT_TRUE(checkPattern(O.Addr, O.Bytes, O.Pattern));
      ++LiveExpected;
    }
  EXPECT_EQ(LiveExpected, (uint64_t)NumThreads * 48);
  EXPECT_EQ(S.AllocedBytes, S.GcSweptBytes + S.tcfreeFreedBytes() +
                                H.stats().HeapLive.load())
      << "swept/freed/live bytes do not add back up to allocated bytes";
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  EXPECT_TRUE(H.pageHeapConsistent());
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}

TEST(TraceHubTest, DroppedEventsAreCountedAcrossSinks) {
  trace::TraceHub Hub(/*CapacityPerSink=*/8);
  trace::TraceSink *A = Hub.makeSink();
  trace::TraceSink *B = Hub.makeSink();
  for (int I = 0; I < 20; ++I) {
    A->emit(trace::EventKind::HeapAlloc);
    B->emit(trace::EventKind::HeapAlloc);
  }
  EXPECT_EQ(Hub.merge().size(), 16u);
  EXPECT_EQ(Hub.dropped(), 24u);
}

//===----------------------------------------------------------------------===//
// Write-barrier torture: concurrent old->young stores under the
// generational backend, survival only via the remembered set
//===----------------------------------------------------------------------===//

namespace {
/// 16-byte node: pointer slot at offset 0, pattern word at offset 8.
const TypeDesc *barrierNodeDesc() {
  static const TypeDesc D{"BarrierNode", 16, false, nullptr,
                          {{0, SlotKind::Raw}}};
  return &D;
}
/// 32-byte target: same layout, different size class. Targets must not
/// share a size class with the containers, or the cache's promoted span
/// pretenures them old and the remembered-set path goes untested.
const TypeDesc *barrierTargetDesc() {
  static const TypeDesc D{"BarrierTarget", 32, false, nullptr,
                          {{0, SlotKind::Raw}}};
  return &D;
}
} // namespace

TEST(ConcurrencyBarrierTest, OldToYoungStoresSurviveConcurrentMinors) {
  // Minor cycles skip old spans entirely at the root scan (gcMarkAddr is a
  // no-op on them), so a young object referenced only from a promoted
  // container lives or dies purely on the write barrier's remembered-set
  // entry. Four mutators hammer exactly that edge while paced and forced
  // minors race them; a single missed barrier shows up as a torn pattern
  // (the slot's young target swept and its memory reused).
  HeapOptions HO;
  HO.NumCaches = 4;
  HO.Gc.Backend = GcBackendKind::Generational;
  HO.Gc.PromoteAfter = 1;
  HO.Gc.NurseryBytes = 64 << 10;   // Tiny nursery: the pacer minors often.
  HO.Gc.MinHeapTrigger = 1 << 30;  // Majors never fire; minors carry alone.
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr int ContainersPerThread = 8;
  constexpr uint64_t Iters = 3000;
  std::vector<std::unique_ptr<RetainedRoots>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<RetainedRoots>());
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      RetainedRoots &R = *Roots[(size_t)T];
      Heap::MutatorScope Scope(H, T);

      // Rooted containers, aged to the old generation: PromoteAfter=1
      // promotes a survivor at its first minor's sweep, so two forced
      // minors guarantee old-ness no matter how paced cycles interleave.
      uintptr_t Containers[ContainersPerThread];
      for (int I = 0; I < ContainersPerThread; ++I) {
        Containers[I] = H.allocate(16, barrierNodeDesc(), AllocCat::Other, T);
        ASSERT_NE(Containers[I], 0u);
        R.Objs.push_back({Containers[I], 8, 0}); // Pattern unused (slot 0).
      }
      H.runGcCycle(GcCycleKind::Minor);
      H.runGcCycle(GcCycleKind::Minor);

      for (uint64_t I = 0; I < Iters; ++I) {
        uintptr_t C = Containers[I % ContainersPerThread];
        // The previous target is reachable ONLY through the old
        // container; any number of minors may have run since it was
        // stored. Its pattern intact is the remembered set working.
        uintptr_t Prev;
        std::memcpy(&Prev, reinterpret_cast<void *>(C), 8);
        if (Prev) {
          uint64_t Want;
          std::memcpy(&Want, reinterpret_cast<void *>(Prev + 8), 8);
          ASSERT_EQ(Want, patternFor(T, Prev))
              << "young target lost across a minor: missed write barrier";
        }
        // Fresh young target; no safepoint between the allocation and the
        // barriered store, so no cycle can sweep it in the window where
        // the container is its only (not yet written) referent.
        uintptr_t Y = H.allocate(32, barrierTargetDesc(), AllocCat::Other, T);
        ASSERT_NE(Y, 0u);
        uint64_t Pat = patternFor(T, Y);
        std::memcpy(reinterpret_cast<void *>(Y + 8), &Pat, 8);
        H.gcWriteBarrier(C, Y);
        std::memcpy(reinterpret_cast<void *>(C), &Y, 8);
        if (I % 256 == 128)
          H.runGcCycle(GcCycleKind::Minor); // Forced minors race the pacer.
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Every container's final target survived the run's last minors.
  for (int T = 0; T < NumThreads; ++T)
    for (const RetainedRoots::Obj &O : Roots[(size_t)T]->Objs) {
      uintptr_t Target;
      std::memcpy(&Target, reinterpret_cast<void *>(O.Addr), 8);
      if (!Target)
        continue;
      uint64_t Want;
      std::memcpy(&Want, reinterpret_cast<void *>(Target + 8), 8);
      EXPECT_EQ(Want, patternFor(T, Target));
    }

  StatsSnapshot S = H.stats().snap();
  EXPECT_GT(S.GcMinorCycles, 0u);
  EXPECT_EQ(S.GcMajorCycles, 0u) << "a major fired despite the 1 GiB trigger";
  EXPECT_GT(S.GcBarrierHits, 0u);
  EXPECT_GT(H.stats().GcSweptCount.load(), 0u)
      << "no minor ever swept a replaced target; the torture was vacuous";
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  EXPECT_TRUE(H.pageHeapConsistent());
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}

//===----------------------------------------------------------------------===//
// Concurrent tricolor mark torture: pointer churn mid-window, reachability
// preserved only by the Dijkstra write barrier
//===----------------------------------------------------------------------===//

namespace {

/// Barriered pointer store, the engines' storeValueAt idiom: shade the new
/// value while a mark is running, then publish with a relaxed atomic store
/// (a background marker may read the slot concurrently).
void storeNext(Heap &H, uintptr_t Slot, uintptr_t NewVal) {
  if (H.gcBarrierActive())
    H.gcWriteBarrier(Slot, NewVal);
  storeWordRelaxed(Slot, NewVal);
}

/// Roots only the chain heads; interior nodes live or die by tracing. The
/// owning thread rewires chains between safepoints, the collector reads
/// them only while that thread is parked (flip handshake).
class ChainHeads : public RootScanner {
public:
  struct Node {
    uintptr_t Addr;
    uint64_t Pattern;
  };
  std::vector<std::vector<Node>> Chains; ///< [chain][pos], head at 0.

  void scanRoots(Heap &H) override {
    for (const std::vector<Node> &C : Chains)
      if (!C.empty())
        H.gcMarkAddr(C.front().Addr);
  }
};

} // namespace

TEST(ConcurrencyConcMarkTest, PointerChurnDuringConcurrentMarkStaysReachable) {
  // Four mutators race concurrent mark windows (marksweep, conc on by
  // default, aggressive pacing) while continuously splicing chain tails
  // between chains through the barriered store path. Mid-window a splice
  // stores a possibly-white tail into a possibly-already-scanned (black)
  // node and then severs the old edge -- exactly the interleaving that
  // loses objects if the Dijkstra barrier misses a shade. The per-thread
  // ground-truth vectors say what each chain must look like afterwards;
  // verify=1 additionally runs the tricolor invariant check at every
  // final flip and the whole-heap verifier at every cycle.
  HeapOptions HO;
  HO.NumCaches = 4;
  HO.Gc.Workers = 4;
  HO.Gc.MinHeapTrigger = 192 << 10;
  HO.Gc.Verify = true;
  Heap H(HO);

  constexpr int NumThreads = 4;
  constexpr int NumChains = 8;
  constexpr int InitLen = 24;
  constexpr uint64_t Iters = 3000;

  std::vector<std::unique_ptr<ChainHeads>> Roots;
  for (int T = 0; T < NumThreads; ++T) {
    Roots.push_back(std::make_unique<ChainHeads>());
    Roots.back()->Chains.resize(NumChains);
    H.addRootScanner(Roots.back().get());
  }

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      ChainHeads &R = *Roots[(size_t)T];
      Heap::MutatorScope Scope(H, T);
      uint64_t Serial = 0, Rng = 0x9e3779b97f4a7c15ull * (uint64_t)(T + 1);
      auto Next = [&] {
        Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
        return Rng >> 33;
      };
      auto NewNode = [&] {
        uintptr_t N = H.allocate(32, chainNodeDesc(), AllocCat::Other, T);
        EXPECT_NE(N, 0u);
        uint64_t Pattern = patternFor(T, Serial++);
        writePattern(N, 24, Pattern);
        storeNext(H, N + 24, 0);
        return ChainHeads::Node{N, Pattern};
      };
      // Seed: chains built tail-first so the head entry (the only root)
      // is in place before any node hangs off it.
      for (int C = 0; C < NumChains; ++C) {
        std::vector<ChainHeads::Node> &Chain = R.Chains[(size_t)C];
        for (int I = 0; I < InitLen; ++I) {
          ChainHeads::Node N = NewNode();
          if (!Chain.empty())
            storeNext(H, N.Addr + 24, Chain.front().Addr);
          Chain.insert(Chain.begin(), N);
        }
      }
      for (uint64_t I = 0; I < Iters; ++I) {
        size_t A = Next() % NumChains, B = Next() % NumChains;
        std::vector<ChainHeads::Node> &Donor = R.Chains[A];
        std::vector<ChainHeads::Node> &Recv = R.Chains[B];
        if (A != B && Donor.size() > 2 && !Recv.empty()) {
          // Splice the donor's tail onto the receiver's end: link first
          // (the barrier shades the tail), then sever the donor edge. The
          // tail is never unreachable in between, so reachability at every
          // possible flip is exactly what the ground truth says.
          size_t K = 1 + Next() % (Donor.size() - 1);
          storeNext(H, Recv.back().Addr + 24, Donor[K].Addr);
          storeNext(H, Donor[K - 1].Addr + 24, 0);
          Recv.insert(Recv.end(), Donor.begin() + (ptrdiff_t)K, Donor.end());
          Donor.erase(Donor.begin() + (ptrdiff_t)K, Donor.end());
        } else {
          // Grow: push a fresh head (rooted immediately via the vector).
          ChainHeads::Node N = NewNode();
          if (!Recv.empty())
            storeNext(H, N.Addr + 24, Recv.front().Addr);
          Recv.insert(Recv.begin(), N);
        }
        // Unrooted garbage keeps the pacer honest mid-churn.
        H.allocate(48, nullptr, AllocCat::Other, T);
        if (I % 750 == 375)
          H.runGc(); // Forced cycles race the paced ones.
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Every chain must match its ground truth node-for-node: a swept or
  // clobbered spliced tail breaks the address walk or the pattern check.
  for (auto &R : Roots)
    for (const std::vector<ChainHeads::Node> &Chain : R->Chains) {
      uintptr_t At = Chain.empty() ? 0 : Chain.front().Addr;
      for (const ChainHeads::Node &N : Chain) {
        ASSERT_EQ(At, N.Addr) << "chain walk diverged from ground truth";
        ASSERT_TRUE(H.isLiveObject(N.Addr));
        EXPECT_TRUE(checkPattern(N.Addr, 24, N.Pattern))
            << "spliced node clobbered: missed barrier shade";
        At = loadWordRelaxed(N.Addr + 24);
      }
      EXPECT_EQ(At, 0u) << "chain longer than ground truth";
    }

  StatsSnapshot S = H.stats().snap();
  EXPECT_GE(S.GcConcCycles, 1u) << "no cycle ran the concurrent path";
  // Two pauses per concurrent cycle, one per STW cycle, and the histogram
  // buckets every one of them.
  EXPECT_EQ(S.GcPauses, S.GcCycles + S.GcConcCycles);
  uint64_t HistSum = 0;
  for (uint64_t B : S.GcPauseHist)
    HistSum += B;
  EXPECT_EQ(HistSum, S.GcPauses);
  EXPECT_TRUE(H.invariantFailure().empty()) << H.invariantFailure();
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  EXPECT_TRUE(H.pageHeapConsistent());
  for (auto &R : Roots)
    H.removeRootScanner(R.get());
}
