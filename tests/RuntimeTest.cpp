//===- tests/RuntimeTest.cpp - Allocator, GC and tcfree tests -------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/MapRt.h"
#include "runtime/SizeClasses.h"
#include "runtime/SliceRt.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

using namespace gofree;
using namespace gofree::rt;

namespace {

/// Root scanner driven by explicit lists, for GC tests.
class TestRoots : public RootScanner {
public:
  std::vector<uintptr_t> Direct;
  std::vector<std::tuple<uintptr_t, const TypeDesc *, size_t>> Regions;

  void scanRoots(Heap &H) override {
    for (uintptr_t A : Direct)
      H.gcMarkAddr(A);
    for (auto &[Addr, Desc, Bytes] : Regions)
      H.gcScanRegion(Addr, Desc, Bytes);
  }
};

/// {int64 value, Node *next}
const TypeDesc *nodeDesc() {
  static const TypeDesc D{"Node", 16, false, nullptr, {{8, SlotKind::Raw}}};
  return &D;
}

const TypeDesc *ptrArrayDesc() {
  static const TypeDesc Elem{"ptr", 8, false, nullptr, {{0, SlotKind::Raw}}};
  static const TypeDesc D{"[]ptr", 8, true, &Elem, {}};
  return &D;
}

const TypeDesc *intArrayDesc() {
  static const TypeDesc D{"[]int", 8, true, scalarDesc(), {}};
  return &D;
}

uint64_t readWord(uintptr_t A) {
  uint64_t V;
  std::memcpy(&V, reinterpret_cast<void *>(A), 8);
  return V;
}

void writeWord(uintptr_t A, uint64_t V) {
  std::memcpy(reinterpret_cast<void *>(A), &V, 8);
}

} // namespace

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClassTest, CoversAllSmallSizes) {
  for (size_t Bytes = 8; Bytes <= MaxSmallSize; Bytes += 8) {
    int Cls = sizeClassFor(Bytes);
    ASSERT_GE(Cls, 0);
    ASSERT_LT(Cls, numSizeClasses());
    EXPECT_GE(classSize(Cls), Bytes);
    // Bounded internal fragmentation: class size < 2x requested.
    EXPECT_LT(classSize(Cls), 2 * Bytes + 16);
  }
}

// Exhaustive round-trip over every request in [0, MaxSmallSize], byte by
// byte: the mapped class must exist, hold the request, and be minimal.
// Also pins the zero-byte hardening: sizeClassFor(0) must map to the
// smallest class even in release builds (the ClassOf table keeps a -1
// sentinel at word 0 that must never leak out).
TEST(SizeClassTest, RoundTripIsExhaustiveAndMinimal) {
  for (size_t Bytes = 0; Bytes <= MaxSmallSize; ++Bytes) {
    int Cls = sizeClassFor(Bytes);
    ASSERT_GE(Cls, 0) << "request " << Bytes;
    ASSERT_LT(Cls, numSizeClasses()) << "request " << Bytes;
    size_t Got = classSize(Cls);
    EXPECT_GE(Got, Bytes < 8 ? size_t(8) : Bytes) << "request " << Bytes;
    // Minimality: no smaller class could have held the request.
    if (Cls > 0) {
      EXPECT_LT(classSize(Cls - 1), Bytes) << "request " << Bytes;
    }
  }
  EXPECT_EQ(sizeClassFor(0), sizeClassFor(1));
  EXPECT_EQ(classSize(sizeClassFor(0)), 8u);
}

TEST(SizeClassTest, ClassesAreMonotone) {
  for (int C = 1; C < numSizeClasses(); ++C)
    EXPECT_GT(classSize(C), classSize(C - 1));
}

TEST(SizeClassTest, SpanHoldsSeveralElements) {
  for (int C = 0; C < numSizeClasses(); ++C) {
    size_t Elems = classSpanPages(C) * PageSize / classSize(C);
    EXPECT_GE(Elems, 4u) << "class " << C;
  }
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

TEST(HeapTest, SmallAllocationsAreDistinctAndZeroed) {
  Heap H;
  std::set<uintptr_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uintptr_t A = H.allocate(24, scalarDesc(), AllocCat::Other, 0);
    ASSERT_NE(A, 0u);
    EXPECT_TRUE(Seen.insert(A).second);
    EXPECT_EQ(readWord(A), 0u);
    EXPECT_EQ(readWord(A + 16), 0u);
    writeWord(A, 0xDEADBEEF); // Dirty it for the zeroing check on reuse.
  }
  EXPECT_EQ(H.stats().AllocCount.load(), 1000u);
  EXPECT_GE(H.stats().AllocedBytes.load(), 24000u);
}

TEST(HeapTest, LargeAllocationGetsDedicatedSpan) {
  Heap H;
  uintptr_t A = H.allocate(100000, scalarDesc(), AllocCat::Slice, 0);
  MSpan *S = H.spanOf(A);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->SizeClass, -1);
  EXPECT_EQ(S->NElems, 1u);
  EXPECT_GE(S->NPages * PageSize, 100000u);
  EXPECT_TRUE(H.isLiveObject(A));
}

TEST(HeapTest, SpanLookupCoversInteriorPointers) {
  Heap H;
  uintptr_t A = H.allocate(64, scalarDesc(), AllocCat::Other, 0);
  MSpan *S = H.spanOf(A + 40);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->slotAddr(S->slotOf(A + 40)), A);
}

TEST(HeapTest, StackAddressIsNotInHeap) {
  Heap H;
  int Local = 0;
  EXPECT_EQ(H.spanOf(reinterpret_cast<uintptr_t>(&Local)), nullptr);
  EXPECT_FALSE(H.isLiveObject(reinterpret_cast<uintptr_t>(&Local)));
}

TEST(HeapTest, PerCacheSpansAreIndependent) {
  Heap H;
  uintptr_t A = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  uintptr_t B = H.allocate(32, scalarDesc(), AllocCat::Other, 1);
  EXPECT_NE(H.spanOf(A), H.spanOf(B));
  EXPECT_EQ(H.spanOf(A)->OwnerCache, 0);
  EXPECT_EQ(H.spanOf(B)->OwnerCache, 1);
}

//===----------------------------------------------------------------------===//
// tcfree
//===----------------------------------------------------------------------===//

TEST(TcfreeTest, SmallFreeAllowsSlotReuse) {
  Heap H;
  uintptr_t A = H.allocate(48, scalarDesc(), AllocCat::Slice, 0);
  writeWord(A, 123);
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeSlice));
  EXPECT_FALSE(H.isLiveObject(A));
  // The very next allocation of the same class reuses the slot, zeroed.
  uintptr_t B = H.allocate(48, scalarDesc(), AllocCat::Slice, 0);
  EXPECT_EQ(B, A);
  EXPECT_EQ(readWord(B), 0u);
  EXPECT_EQ(H.stats().FreedCountBySource[(int)FreeSource::TcfreeSlice].load(),
            1u);
}

TEST(TcfreeTest, GivesUpOnNullAndStackAddresses) {
  Heap H;
  EXPECT_FALSE(H.tcfreeObject(0, 0, FreeSource::TcfreeObject));
  int Local;
  EXPECT_FALSE(H.tcfreeObject(reinterpret_cast<uintptr_t>(&Local), 0,
                              FreeSource::TcfreeObject));
  EXPECT_EQ(H.stats().snap().TcfreeGiveUps, 2u);
}

TEST(TcfreeTest, GivesUpWhenSpanOwnedElsewhere) {
  Heap H;
  uintptr_t A = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  // Simulate the span migrating to another thread's cache between
  // allocation and tcfree (section 5's ownership-change give-up).
  H.reassignSpanOwner(A, 2);
  EXPECT_FALSE(H.tcfreeObject(A, 0, FreeSource::TcfreeObject));
  EXPECT_TRUE(H.isLiveObject(A));
}

TEST(TcfreeTest, DoubleFreeIsBenign) {
  Heap H;
  uintptr_t A = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeObject));
  EXPECT_FALSE(H.tcfreeObject(A, 0, FreeSource::TcfreeObject));
  EXPECT_EQ(
      H.stats().FreedCountBySource[(int)FreeSource::TcfreeObject].load(), 1u);
}

TEST(TcfreeTest, LargeFreeIsTwoStep) {
  Heap H;
  uintptr_t A = H.allocate(200000, scalarDesc(), AllocCat::Slice, 0);
  uint64_t CommittedBefore = H.stats().Committed.load();
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeSlice));
  // Step 1: pages returned immediately, control block dangling.
  EXPECT_LT(H.stats().Committed.load(), CommittedBefore);
  EXPECT_EQ(H.danglingSpanCount(), 1u);
  EXPECT_EQ(H.spanOf(A), nullptr) << "pages must leave the page map";
  // Step 2: the next GC cycle retires the control block.
  TestRoots Roots;
  H.setRootScanner(&Roots);
  H.runGc();
  EXPECT_EQ(H.danglingSpanCount(), 0u);
}

TEST(TcfreeTest, LargeDoubleFreeIsBenign) {
  Heap H;
  uintptr_t A = H.allocate(200000, scalarDesc(), AllocCat::Slice, 0);
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeSlice));
  EXPECT_FALSE(H.tcfreeObject(A, 0, FreeSource::TcfreeSlice));
}

TEST(TcfreeTest, GivesUpDuringGc) {
  // A root scanner that calls tcfree re-entrantly: the call must give up
  // because the collector is running.
  class HostileRoots : public RootScanner {
  public:
    uintptr_t Target = 0;
    bool Result = true;
    void scanRoots(Heap &H) override {
      Result = H.tcfreeObject(Target, 0, FreeSource::TcfreeObject);
      H.gcMarkAddr(Target);
    }
  };
  Heap H;
  HostileRoots Roots;
  Roots.Target = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  H.setRootScanner(&Roots);
  H.runGc();
  EXPECT_FALSE(Roots.Result);
  EXPECT_TRUE(H.isLiveObject(Roots.Target));
}

TEST(TcfreeTest, FreedBytesCountedBySource) {
  Heap H;
  uintptr_t A = H.allocate(64, scalarDesc(), AllocCat::Map, 0);
  uintptr_t B = H.allocate(64, scalarDesc(), AllocCat::Map, 0);
  H.tcfreeObject(A, 0, FreeSource::TcfreeMap);
  H.tcfreeObject(B, 0, FreeSource::MapGrowOld);
  EXPECT_EQ(H.stats().FreedBytesBySource[(int)FreeSource::TcfreeMap].load(),
            64u);
  EXPECT_EQ(H.stats().FreedBytesBySource[(int)FreeSource::MapGrowOld].load(),
            64u);
}

//===----------------------------------------------------------------------===//
// Garbage collection
//===----------------------------------------------------------------------===//

TEST(GcTest, UnreachableObjectsAreSwept) {
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  uintptr_t Kept = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  uintptr_t Dead = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  Roots.Direct.push_back(Kept);
  H.runGc();
  EXPECT_TRUE(H.isLiveObject(Kept));
  EXPECT_FALSE(H.isLiveObject(Dead));
  EXPECT_EQ(H.stats().GcSweptCount.load(), 1u);
}

TEST(GcTest, MarkFollowsPointerChains) {
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  // Build a 100-node list; root only the head.
  uintptr_t Head = 0;
  std::vector<uintptr_t> Nodes;
  for (int I = 0; I < 100; ++I) {
    uintptr_t N = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
    writeWord(N, (uint64_t)I);
    writeWord(N + 8, Head);
    Head = N;
    Nodes.push_back(N);
  }
  Roots.Direct.push_back(Head);
  H.runGc();
  for (uintptr_t N : Nodes)
    EXPECT_TRUE(H.isLiveObject(N));
  // Cutting node 50's next pointer frees everything below it (the chain
  // runs head = Nodes[99] -> Nodes[98] -> ... -> Nodes[0]).
  writeWord(Nodes[50] + 8, 0);
  H.runGc();
  for (int I = 0; I < 50; ++I)
    EXPECT_FALSE(H.isLiveObject(Nodes[(size_t)I])) << I;
  for (int I = 50; I < 100; ++I)
    EXPECT_TRUE(H.isLiveObject(Nodes[(size_t)I])) << I;
}

TEST(GcTest, PointerArraysAreScannedElementWise) {
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  uintptr_t Arr = H.allocate(10 * 8, ptrArrayDesc(), AllocCat::Slice, 0);
  std::vector<uintptr_t> Targets;
  for (int I = 0; I < 10; ++I) {
    uintptr_t T = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
    writeWord(Arr + (size_t)I * 8, T);
    Targets.push_back(T);
  }
  Roots.Direct.push_back(Arr);
  H.runGc();
  for (uintptr_t T : Targets)
    EXPECT_TRUE(H.isLiveObject(T));
}

TEST(GcTest, RootRegionsScanSliceHeaders) {
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  uintptr_t Arr = H.allocate(64, intArrayDesc(), AllocCat::Slice, 0);
  // A fake stack frame holding one slice header.
  static const TypeDesc FrameDesc{
      "frame", 24, false, nullptr, {{0, SlotKind::Slice}}};
  SliceHeader Frame{Arr, 8, 8};
  Roots.Regions.emplace_back(reinterpret_cast<uintptr_t>(&Frame), &FrameDesc,
                             sizeof(Frame));
  H.runGc();
  EXPECT_TRUE(H.isLiveObject(Arr));
  Frame.Data = 0;
  H.runGc();
  EXPECT_FALSE(H.isLiveObject(Arr));
}

TEST(GcTest, InteriorPointerKeepsWholeObject) {
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  uintptr_t Arr = H.allocate(80, intArrayDesc(), AllocCat::Slice, 0);
  Roots.Direct.push_back(Arr + 40); // &arr[5]
  H.runGc();
  EXPECT_TRUE(H.isLiveObject(Arr));
}

TEST(GcTest, PacingTriggersCollection) {
  HeapOptions O;
  O.Gc.MinHeapTrigger = 64 * 1024;
  Heap H(O);
  TestRoots Roots;
  H.setRootScanner(&Roots);
  // Allocate 1 MiB of garbage: several cycles must fire and the live heap
  // must stay bounded.
  for (int I = 0; I < 1024; ++I)
    H.allocate(1024, scalarDesc(), AllocCat::Other, 0);
  EXPECT_GE(H.stats().GcCycles.load(), 2u);
  EXPECT_LT(H.stats().HeapLive.load(), 256u * 1024);
}

TEST(GcTest, GcOffNeverCollects) {
  HeapOptions O;
  O.Gc.Gogc = -1;
  O.Gc.MinHeapTrigger = 4096;
  Heap H(O);
  TestRoots Roots;
  H.setRootScanner(&Roots);
  for (int I = 0; I < 1000; ++I)
    H.allocate(1024, scalarDesc(), AllocCat::Other, 0);
  EXPECT_EQ(H.stats().GcCycles.load(), 0u);
}

TEST(GcTest, TcfreeReducesGcFrequency) {
  // The core effect of the paper: explicitly freeing short-lived garbage
  // delays heap growth and reduces GC cycles.
  auto Run = [](bool UseTcfree) {
    HeapOptions O;
    O.Gc.MinHeapTrigger = 64 * 1024;
    Heap H(O);
    TestRoots Roots;
    H.setRootScanner(&Roots);
    for (int I = 0; I < 4096; ++I) {
      uintptr_t A = H.allocate(512, scalarDesc(), AllocCat::Slice, 0);
      if (UseTcfree)
        H.tcfreeObject(A, 0, FreeSource::TcfreeSlice);
    }
    return H.stats().GcCycles.load();
  };
  uint64_t WithFree = Run(true);
  uint64_t WithoutFree = Run(false);
  EXPECT_LT(WithFree, WithoutFree);
  EXPECT_EQ(WithFree, 0u) << "perfectly freed workload needs no GC";
}

//===----------------------------------------------------------------------===//
// Pacer arithmetic: gcTriggerFor saturation boundaries
//===----------------------------------------------------------------------===//

TEST(GcPacerTest, TriggerBasics) {
  EXPECT_EQ(Heap::gcTriggerFor(100, 100, 0), 200u);
  EXPECT_EQ(Heap::gcTriggerFor(100, 50, 0), 150u);
  EXPECT_EQ(Heap::gcTriggerFor(0, 100, 0), 0u);
}

TEST(GcPacerTest, MinTriggerIsAFloor) {
  EXPECT_EQ(Heap::gcTriggerFor(10, 100, 4096), 4096u);
  EXPECT_EQ(Heap::gcTriggerFor(1ull << 20, 100, 4096), 2ull << 20);
}

TEST(GcPacerTest, NegativeGogcDisablesPacing) {
  EXPECT_EQ(Heap::gcTriggerFor(0, -1, 0), UINT64_MAX);
  EXPECT_EQ(Heap::gcTriggerFor(UINT64_MAX, -1, 4096), UINT64_MAX);
}

TEST(GcPacerTest, HugeHeapSaturatesInsteadOfWrapping) {
  // The seed computed marked * (100 + GOGC) / 100 in 64 bits; a big heap
  // or a big GOGC wrapped it into a tiny trigger, i.e. a permanent GC
  // storm. The fixed pacer saturates at UINT64_MAX instead.
  EXPECT_EQ(Heap::gcTriggerFor(UINT64_MAX, 100, 0), UINT64_MAX);
  EXPECT_EQ(Heap::gcTriggerFor(1ull << 63, 100, 0), UINT64_MAX);
  EXPECT_EQ(Heap::gcTriggerFor(UINT64_MAX / 2, 300, 0), UINT64_MAX);
  EXPECT_EQ(Heap::gcTriggerFor(UINT64_MAX, INT32_MAX, 0), UINT64_MAX);
}

TEST(GcPacerTest, JustBelowSaturationIsExact) {
  // 2 * (2^63 - 1) = UINT64_MAX - 1: the largest doubling that still fits
  // in 64 bits must come out exact, not clamped.
  uint64_t M = (1ull << 63) - 1;
  EXPECT_EQ(Heap::gcTriggerFor(M, 100, 0), UINT64_MAX - 1);
  // GOGC=0 never overflows: trigger == marked even at the top of range.
  EXPECT_EQ(Heap::gcTriggerFor(UINT64_MAX, 0, 0), UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// Scan-depth regressions: marking must stay O(1) deep in C++ stack
//===----------------------------------------------------------------------===//

TEST(GcScanTest, DeeplyNestedArrayDescriptorsScanIteratively) {
  // A 16k-deep chain of single-element nested arrays. The seed burned one
  // gcScanRegion recursion frame per nesting level, so a chain like this
  // overflowed the C++ stack; the iterative scanner defers each level to
  // the mark stack instead.
  constexpr size_t Depth = 16 * 1024;
  static const TypeDesc Base{"deepbase", 8, false, nullptr,
                             {{0, SlotKind::Raw}}};
  std::vector<TypeDesc> Chain;
  Chain.reserve(Depth); // No reallocation: Elem pointers must stay stable.
  const TypeDesc *Prev = &Base;
  for (size_t I = 0; I < Depth; ++I) {
    Chain.push_back(TypeDesc{"[]deep", 8, true, Prev, {}});
    Prev = &Chain.back();
  }

  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  uintptr_t Target = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
  uintptr_t Obj = H.allocate(8, Prev, AllocCat::Other, 0);
  writeWord(Obj, Target);
  Roots.Direct.push_back(Obj);
  H.runGc();
  EXPECT_TRUE(H.isLiveObject(Obj));
  EXPECT_TRUE(H.isLiveObject(Target))
      << "pointer under " << Depth << " array levels was not scanned";
}

TEST(GcScanTest, HugeFlatPointerArraySplitsOntoMarkStack) {
  // 8192 pointer slots = 64 KiB, far past the array-split threshold: the
  // scanner must chunk the array onto the mark stack and still visit every
  // slot, including the very last one.
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  constexpr size_t Slots = 8192;
  uintptr_t Arr = H.allocate(Slots * 8, ptrArrayDesc(), AllocCat::Slice, 0);
  std::vector<uintptr_t> Targets;
  for (int I = 0; I < 64; ++I)
    Targets.push_back(H.allocate(16, nodeDesc(), AllocCat::Other, 0));
  for (size_t I = 0; I < Slots; ++I)
    writeWord(Arr + I * 8, Targets[I % Targets.size()]);
  // The final slot alone keeps one sentinel alive: if chunking dropped the
  // array's tail, this catches it.
  uintptr_t Tail = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
  writeWord(Arr + (Slots - 1) * 8, Tail);
  uintptr_t Dead = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
  Roots.Direct.push_back(Arr);
  H.runGc();
  for (uintptr_t T : Targets)
    EXPECT_TRUE(H.isLiveObject(T));
  EXPECT_TRUE(H.isLiveObject(Tail));
  EXPECT_FALSE(H.isLiveObject(Dead));
}

//===----------------------------------------------------------------------===//
// Parallel marking
//===----------------------------------------------------------------------===//

TEST(GcParallelTest, FourWorkersMarkTheSameLiveSet) {
  HeapOptions O;
  O.Gc.Workers = 4;
  Heap H(O);
  TestRoots Roots;
  H.setRootScanner(&Roots);
  // A forest of linked lists with garbage interleaved between the nodes,
  // so the workers have real pointer chasing and stealing to do.
  std::vector<uintptr_t> Live, Dead;
  for (int L = 0; L < 32; ++L) {
    uintptr_t Head = 0;
    for (int I = 0; I < 64; ++I) {
      uintptr_t N = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
      writeWord(N + 8, Head);
      Head = N;
      Live.push_back(N);
      Dead.push_back(H.allocate(16, nodeDesc(), AllocCat::Other, 0));
    }
    Roots.Direct.push_back(Head);
  }
  H.runGc();
  for (uintptr_t A : Live)
    EXPECT_TRUE(H.isLiveObject(A));
  for (uintptr_t A : Dead)
    EXPECT_FALSE(H.isLiveObject(A));
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  // A second cycle reuses the worker pool rather than respawning it.
  H.runGc();
  for (uintptr_t A : Live)
    EXPECT_TRUE(H.isLiveObject(A));
}

//===----------------------------------------------------------------------===//
// Lazy sweeping
//===----------------------------------------------------------------------===//

TEST(GcLazySweepTest, PacedGcDefersSweepingToAllocation) {
  HeapOptions O;
  O.Gc.MinHeapTrigger = 64 * 1024;
  Heap H(O);
  TestRoots Roots;
  H.setRootScanner(&Roots);
  // Garbage across several size classes, so one paced cycle leaves spans
  // of the non-triggering classes unswept when the pause ends.
  const size_t Sizes[] = {32, 256, 2048};
  size_t UnsweptAfterMark = 0;
  bool Cycled = false;
  for (int Spin = 0; !Cycled && Spin < 100000; ++Spin) {
    for (size_t Sz : Sizes) {
      H.allocate(Sz, scalarDesc(), AllocCat::Other, 0);
      if (H.stats().GcCycles.load() != 0) {
        // Probe immediately: later allocations would pay the debt down.
        UnsweptAfterMark = H.unsweptSpanCount();
        Cycled = true;
        break;
      }
    }
  }
  ASSERT_TRUE(Cycled);
  EXPECT_GT(UnsweptAfterMark, 0u)
      << "paced GC swept everything inside the pause";
  // Keep allocating: cache refills and sweep credit pay the debt down.
  for (int I = 0; I < 2000; ++I)
    for (size_t Sz : Sizes)
      H.allocate(Sz, scalarDesc(), AllocCat::Other, 0);
  EXPECT_GT(H.stats().GcSpansSweptLazy.load(), 0u);
  std::string Report;
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
  // A forced cycle from a solo thread sweeps eagerly: no debt remains.
  H.runGc();
  EXPECT_EQ(H.unsweptSpanCount(), 0u);
  EXPECT_TRUE(H.verifyInvariants(&Report)) << Report;
}

TEST(GcLazySweepTest, EmptyCachedSpanIsDetachedAndRetired) {
  // Every object in a cache-owned current span dies: the STW sweep must
  // detach the span from the owning cache and retire it rather than leave
  // the cache holding a retired span (finishSweepStw's OwnerCache branch).
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  std::vector<uintptr_t> Objs;
  for (int I = 0; I < 8; ++I)
    Objs.push_back(H.allocate(32, scalarDesc(), AllocCat::Other, 0));
  H.runGc(); // Forced + solo thread => eager sweep inside the pause.
  for (uintptr_t A : Objs)
    EXPECT_FALSE(H.isLiveObject(A));
  EXPECT_EQ(H.unsweptSpanCount(), 0u);
  std::string Report;
  ASSERT_TRUE(H.verifyInvariants(&Report)) << Report;
  // The next allocation must get a fresh span through the normal refill
  // path, not scribble on the retired one.
  uintptr_t B = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  EXPECT_TRUE(H.isLiveObject(B));
  EXPECT_EQ(H.stats().HeapLive.load(), 32u);
  ASSERT_TRUE(H.verifyInvariants(&Report)) << Report;
}

//===----------------------------------------------------------------------===//
// Mock (poisoning) tcfree for the robustness methodology
//===----------------------------------------------------------------------===//

TEST(MockTcfreeTest, PoisonsInsteadOfFreeing) {
  HeapOptions O;
  O.Mock = MockTcfree::Flip;
  Heap H(O);
  uintptr_t A = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  writeWord(A, 0x00FF00FF00FF00FFull);
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeObject));
  // Object still allocated, but its contents were corrupted.
  EXPECT_TRUE(H.isLiveObject(A));
  EXPECT_EQ(readWord(A), 0xFF00FF00FF00FF00ull);
  EXPECT_EQ(H.stats().MockPoisonedCount.load(), 1u);
  EXPECT_EQ(H.stats().tcfreeFreedBytes(), 0u);
}

TEST(MockTcfreeTest, ZeroModeZeroes) {
  HeapOptions O;
  O.Mock = MockTcfree::Zero;
  Heap H(O);
  uintptr_t A = H.allocate(32, scalarDesc(), AllocCat::Other, 0);
  writeWord(A, 42);
  H.tcfreeObject(A, 0, FreeSource::TcfreeObject);
  EXPECT_EQ(readWord(A), 0u);
}

//===----------------------------------------------------------------------===//
// Slice runtime
//===----------------------------------------------------------------------===//

TEST(SliceRtTest, GrowPreservesContents) {
  Heap H;
  SliceHeader Hdr{sliceAllocArray(H, intArrayDesc(), 4, 8, 0), 0, 4};
  SliceRtOptions Opts;
  for (int64_t I = 0; I < 100; ++I) {
    sliceGrowForAppend(H, Hdr, intArrayDesc(), 8, 0, Opts);
    ASSERT_LT(Hdr.Len, Hdr.Cap);
    writeWord(Hdr.Data + (size_t)Hdr.Len * 8, (uint64_t)(I * 7));
    ++Hdr.Len;
  }
  for (int64_t I = 0; I < 100; ++I)
    EXPECT_EQ(readWord(Hdr.Data + (size_t)I * 8), (uint64_t)(I * 7));
}

TEST(SliceRtTest, FreeOldOnGrowReclaims) {
  Heap H;
  SliceRtOptions Opts;
  Opts.FreeOldOnGrow = true;
  SliceHeader Hdr{sliceAllocArray(H, intArrayDesc(), 4, 8, 0), 4, 4};
  uintptr_t Old = Hdr.Data;
  sliceGrowForAppend(H, Hdr, intArrayDesc(), 8, 0, Opts);
  EXPECT_NE(Hdr.Data, Old);
  EXPECT_FALSE(H.isLiveObject(Old));
}

TEST(SliceRtTest, TcfreeSliceUnwraps) {
  Heap H;
  SliceHeader Hdr{sliceAllocArray(H, intArrayDesc(), 16, 8, 0), 16, 16};
  EXPECT_TRUE(tcfreeSlice(H, Hdr, 0));
  EXPECT_FALSE(H.isLiveObject(Hdr.Data));
}

//===----------------------------------------------------------------------===//
// Map runtime
//===----------------------------------------------------------------------===//

namespace {

MapCtx makeIntMapCtx(Heap &H) {
  static const TypeDesc Entry{"entry", 24, false, nullptr, {}};
  static const TypeDesc Buckets{"buckets", 8, true, &Entry, {}};
  MapCtx Ctx;
  Ctx.H = &H;
  Ctx.BucketArrayDesc = &Buckets;
  Ctx.ValueSize = 8;
  Ctx.CacheId = 0;
  return Ctx;
}

const TypeDesc *hmapDesc() {
  static const TypeDesc D{
      "hmap", HMapHeaderSize, false, nullptr, {{HMapBucketsOff, SlotKind::Raw}}};
  return &D;
}

} // namespace

TEST(MapRtTest, InsertLookupDelete) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  for (int64_t K = 0; K < 50; ++K) {
    int64_t V = K * K;
    mapAssign(Ctx, M, K, &V);
  }
  EXPECT_EQ(mapLen(M), 50);
  int64_t Out = 0;
  EXPECT_TRUE(mapLookup(M, 7, &Out, 8));
  EXPECT_EQ(Out, 49);
  EXPECT_FALSE(mapLookup(M, 999, &Out, 8));
  EXPECT_EQ(Out, 0) << "missing key yields zero value";
  EXPECT_TRUE(mapDelete(M, 7));
  EXPECT_FALSE(mapDelete(M, 7));
  EXPECT_EQ(mapLen(M), 49);
  EXPECT_FALSE(mapLookup(M, 7, &Out, 8));
}

TEST(MapRtTest, UpdateOverwritesInPlace) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  int64_t V = 1;
  mapAssign(Ctx, M, 5, &V);
  V = 2;
  mapAssign(Ctx, M, 5, &V);
  EXPECT_EQ(mapLen(M), 1);
  int64_t Out;
  mapLookup(M, 5, &Out, 8);
  EXPECT_EQ(Out, 2);
}

TEST(MapRtTest, GrowthKeepsAllEntriesAndFreesOldBuckets) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  for (int64_t K = 0; K < 1000; ++K) {
    int64_t V = K * 3 + 1;
    mapAssign(Ctx, M, K, &V);
  }
  EXPECT_EQ(mapLen(M), 1000);
  for (int64_t K = 0; K < 1000; ++K) {
    int64_t Out = 0;
    ASSERT_TRUE(mapLookup(M, K, &Out, 8)) << K;
    EXPECT_EQ(Out, K * 3 + 1);
  }
  // Growth happened and GrowMapAndFreeOld reclaimed the abandoned arrays.
  EXPECT_GT(
      H.stats().FreedCountBySource[(int)FreeSource::MapGrowOld].load(), 2u);
}

TEST(MapRtTest, GrowFreeOldDisabledLeavesGarbageToGc) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  Ctx.Opts.GrowFreeOld = false;
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  for (int64_t K = 0; K < 1000; ++K)
    mapAssign(Ctx, M, K, &K);
  EXPECT_EQ(
      H.stats().FreedCountBySource[(int)FreeSource::MapGrowOld].load(), 0u);
}

TEST(MapRtTest, ManyDeletesViaTombstonesStillWork) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  for (int64_t Round = 0; Round < 20; ++Round) {
    for (int64_t K = 0; K < 64; ++K) {
      int64_t V = Round * 100 + K;
      mapAssign(Ctx, M, K, &V);
    }
    for (int64_t K = 0; K < 64; K += 2)
      mapDelete(Ctx.H ? M : M, K);
  }
  EXPECT_EQ(mapLen(M), 32);
  int64_t Out;
  EXPECT_TRUE(mapLookup(M, 1, &Out, 8));
  EXPECT_FALSE(mapLookup(M, 2, &Out, 8));
}

TEST(MapRtTest, TcfreeMapFreesBucketsAndHeader) {
  Heap H;
  MapCtx Ctx = makeIntMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 4);
  int64_t V = 9;
  mapAssign(Ctx, M, 1, &V);
  EXPECT_TRUE(tcfreeMap(H, M, 0));
  EXPECT_FALSE(H.isLiveObject(M));
  EXPECT_GE(
      H.stats().FreedCountBySource[(int)FreeSource::TcfreeMap].load(), 2u);
}

TEST(MapRtTest, GcScansMapValues) {
  // map[int]*Node: values must keep their targets alive.
  Heap H;
  TestRoots Roots;
  H.setRootScanner(&Roots);
  static const TypeDesc Entry{
      "entryP", 24, false, nullptr, {{16, SlotKind::Raw}}};
  static const TypeDesc Buckets{"bucketsP", 8, true, &Entry, {}};
  MapCtx Ctx;
  Ctx.H = &H;
  Ctx.BucketArrayDesc = &Buckets;
  Ctx.ValueSize = 8;
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  uintptr_t Target = H.allocate(16, nodeDesc(), AllocCat::Other, 0);
  mapAssign(Ctx, M, 42, &Target);
  Roots.Direct.push_back(M);
  H.runGc();
  EXPECT_TRUE(H.isLiveObject(M));
  EXPECT_TRUE(H.isLiveObject(Target));
  // Dropping the map frees the chain.
  Roots.Direct.clear();
  H.runGc();
  EXPECT_FALSE(H.isLiveObject(M));
  EXPECT_FALSE(H.isLiveObject(Target));
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(HeapThreadTest, ParallelAllocateAndFree) {
  Heap H; // No root scanner: GC stays off, caches operate independently.
  constexpr int NumThreads = 4;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Sum{0};
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&H, T, &Sum] {
      uint64_t Local = 0;
      for (int I = 0; I < PerThread; ++I) {
        size_t Bytes = 16 + (size_t)(I % 13) * 24;
        uintptr_t A = H.allocate(Bytes, scalarDesc(), AllocCat::Other, T);
        writeWord(A, (uint64_t)I);
        Local += readWord(A);
        if (I % 3 == 0)
          H.tcfreeObject(A, T, FreeSource::TcfreeObject);
      }
      Sum.fetch_add(Local);
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(H.stats().AllocCount.load(), (uint64_t)NumThreads * PerThread);
  // Every thread read back exactly what it wrote.
  uint64_t Expected =
      (uint64_t)NumThreads * ((uint64_t)PerThread * (PerThread - 1) / 2);
  EXPECT_EQ(Sum.load(), Expected);
}

//===----------------------------------------------------------------------===//
// Batched tcfree (section 5's batching discussion)
//===----------------------------------------------------------------------===//

TEST(TcfreeBatchTest, FreesAllEligibleObjects) {
  Heap H;
  std::vector<uintptr_t> Addrs;
  for (int I = 0; I < 32; ++I)
    Addrs.push_back(H.allocate(64, scalarDesc(), AllocCat::Other, 0));
  size_t Freed =
      H.tcfreeBatch(Addrs.data(), Addrs.size(), 0, FreeSource::TcfreeObject);
  EXPECT_EQ(Freed, 32u);
  for (uintptr_t A : Addrs)
    EXPECT_FALSE(H.isLiveObject(A));
}

TEST(TcfreeBatchTest, MixedBatchFreesOnlyEligible) {
  Heap H;
  uintptr_t Good = H.allocate(64, scalarDesc(), AllocCat::Other, 0);
  uintptr_t Foreign = H.allocate(64, scalarDesc(), AllocCat::Other, 1);
  int Local = 0;
  uintptr_t Addrs[3] = {Good, Foreign, reinterpret_cast<uintptr_t>(&Local)};
  size_t Freed = H.tcfreeBatch(Addrs, 3, 0, FreeSource::TcfreeObject);
  EXPECT_EQ(Freed, 1u);
  EXPECT_FALSE(H.isLiveObject(Good));
  EXPECT_TRUE(H.isLiveObject(Foreign));
}

TEST(TcfreeBatchTest, WholeBatchGivesUpDuringGc) {
  class BatchingRoots : public RootScanner {
  public:
    std::vector<uintptr_t> Targets;
    size_t FreedDuringGc = 0;
    void scanRoots(Heap &H) override {
      FreedDuringGc = H.tcfreeBatch(Targets.data(), Targets.size(), 0,
                                    FreeSource::TcfreeObject);
      for (uintptr_t A : Targets)
        H.gcMarkAddr(A);
    }
  };
  Heap H;
  BatchingRoots Roots;
  for (int I = 0; I < 8; ++I)
    Roots.Targets.push_back(H.allocate(32, scalarDesc(), AllocCat::Other, 0));
  H.setRootScanner(&Roots);
  H.runGc();
  EXPECT_EQ(Roots.FreedDuringGc, 0u);
  for (uintptr_t A : Roots.Targets)
    EXPECT_TRUE(H.isLiveObject(A));
}

//===----------------------------------------------------------------------===//
// Page heap: chunk-tagged free runs
//===----------------------------------------------------------------------===//

// Regression: freePages used to coalesce runs by address adjacency alone.
// Two separately malloc'd arena chunks can be address-adjacent, and a run
// merged across that boundary gets handed out by allocPages as one span
// straddling two allocations. Runs are now tagged with their chunk and only
// same-chunk neighbours merge.
TEST(PageHeapTest, NoCoalesceAcrossAdjacentChunks) {
  Heap H;
  EXPECT_EQ(H.chunkCount(), 0u);
  H.testInjectAdjacentChunks(5);
  EXPECT_EQ(H.chunkCount(), 2u);
  // Address-adjacent, but different chunks: the runs must stay separate.
  EXPECT_EQ(H.freeRunCount(), 2u);
  EXPECT_TRUE(H.pageHeapConsistent());

  // An 8-page request fits no single 5-page chunk; it must grow a fresh
  // chunk rather than be served from a merged straddling run.
  uintptr_t A = H.allocate(8 * PageSize, nullptr, AllocCat::Other, 0);
  ASSERT_NE(A, 0u);
  MSpan *S = H.spanOf(A);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->NPages, 8u);
  EXPECT_GE(S->Chunk, 2u); // Neither injected chunk.
  EXPECT_TRUE(H.pageHeapConsistent());

  // A request that fits one injected chunk may use it.
  uintptr_t B = H.allocate(5 * PageSize, nullptr, AllocCat::Other, 0);
  ASSERT_NE(B, 0u);
  MSpan *SB = H.spanOf(B);
  ASSERT_NE(SB, nullptr);
  EXPECT_LT(SB->Chunk, 2u);
  EXPECT_TRUE(H.pageHeapConsistent());
}

TEST(PageHeapTest, SameChunkRunsStillCoalesce) {
  Heap H;
  // Two large spans carved back-to-back from one chunk; freeing both must
  // merge them back into a single run (plus the chunk's remainder, which
  // is adjacent to the second span and folds in too).
  uintptr_t A = H.allocate(5 * PageSize, nullptr, AllocCat::Other, 0);
  uintptr_t B = H.allocate(5 * PageSize, nullptr, AllocCat::Other, 0);
  ASSERT_EQ(H.chunkCount(), 1u);
  EXPECT_TRUE(H.tcfreeObject(A, 0, FreeSource::TcfreeObject));
  EXPECT_TRUE(H.tcfreeObject(B, 0, FreeSource::TcfreeObject));
  EXPECT_EQ(H.freeRunCount(), 1u);
  EXPECT_TRUE(H.pageHeapConsistent());
}

//===----------------------------------------------------------------------===//
// Release-mode hardening: option and cache-id clamping
//===----------------------------------------------------------------------===//

// Regression: NumCaches was guarded only by an assert, which compiles away
// under NDEBUG and left Caches empty -- the first allocSmall then indexed
// out of bounds. The clamp must be unconditional.
TEST(HeapOptionsTest, NumCachesClampedToAtLeastOne) {
  HeapOptions O;
  O.NumCaches = 0;
  Heap H(O);
  EXPECT_EQ(H.options().NumCaches, 1);
  uintptr_t A = H.allocate(64, scalarDesc(), AllocCat::Other, 0);
  EXPECT_NE(A, 0u);
  EXPECT_TRUE(H.isLiveObject(A));

  HeapOptions Neg;
  Neg.NumCaches = -7;
  Heap H2(Neg);
  EXPECT_EQ(H2.options().NumCaches, 1);
  EXPECT_NE(H2.allocate(64, scalarDesc(), AllocCat::Other, 0), 0u);
}

// Same story for the CacheId argument of allocate/tcfree: formerly
// assert-only, now clamped into [0, NumCaches) on every call.
TEST(HeapOptionsTest, CacheIdClampedOnAllocateAndTcfree) {
  Heap H; // 4 caches.
  uintptr_t Low = H.allocate(64, scalarDesc(), AllocCat::Other, -5);
  uintptr_t High = H.allocate(64, scalarDesc(), AllocCat::Other, 99);
  ASSERT_NE(Low, 0u);
  ASSERT_NE(High, 0u);
  // -5 clamps to cache 0, 99 clamps to the last cache; freeing with the
  // same out-of-range id must resolve to the same cache and succeed.
  EXPECT_TRUE(H.tcfreeObject(Low, -5, FreeSource::TcfreeObject));
  EXPECT_TRUE(H.tcfreeObject(High, 99, FreeSource::TcfreeObject));
  EXPECT_FALSE(H.isLiveObject(Low));
  EXPECT_FALSE(H.isLiveObject(High));
  // Cross-clamped ids behave like any foreign cache: give up, stay live.
  uintptr_t C = H.allocate(64, scalarDesc(), AllocCat::Other, 99);
  EXPECT_FALSE(H.tcfreeObject(C, 0, FreeSource::TcfreeObject));
  EXPECT_TRUE(H.isLiveObject(C));
}

//===----------------------------------------------------------------------===//
// Pause histogram: bucket indexing and percentile derivation. The serving
// bench reads p99/p999 straight out of these helpers, so the boundary math
// is pinned exhaustively -- an off-by-one here silently misreports SLOs.
//===----------------------------------------------------------------------===//

TEST(PauseHistTest, BucketBoundariesExhaustive) {
  // Bucket 0 holds [0, 2) us; bucket B >= 1 holds [2^B, 2^(B+1)) us; the
  // last bucket is open-ended. Check below/at/above every boundary.
  EXPECT_EQ(pauseBucketFor(0), 0);
  EXPECT_EQ(pauseBucketFor(1), 0);
  for (int B = 1; B < NumPauseBuckets; ++B) {
    uint64_t Lo = 1ull << B;
    EXPECT_EQ(pauseBucketFor(Lo - 1), B - 1) << "below boundary 2^" << B;
    EXPECT_EQ(pauseBucketFor(Lo), B) << "at boundary 2^" << B;
    EXPECT_EQ(pauseBucketFor(Lo + 1), B) << "above boundary 2^" << B;
  }
  // Everything past the last boundary stays in the last bucket.
  EXPECT_EQ(pauseBucketFor(1ull << NumPauseBuckets), NumPauseBuckets - 1);
  EXPECT_EQ(pauseBucketFor(UINT64_MAX), NumPauseBuckets - 1);
}

TEST(PauseHistTest, BucketMaxMatchesBucketFor) {
  // The inclusive upper edge of bucket B must map back into bucket B, and
  // its successor into B+1 (except the open-ended last bucket).
  for (int B = 0; B + 1 < NumPauseBuckets; ++B) {
    uint64_t Max = pauseBucketMaxUs(B);
    EXPECT_EQ(pauseBucketFor(Max), B) << "bucket " << B;
    EXPECT_EQ(pauseBucketFor(Max + 1), B + 1) << "bucket " << B;
  }
  EXPECT_EQ(pauseBucketMaxUs(NumPauseBuckets - 1), UINT64_MAX);
}

TEST(PauseHistTest, PercentileOnSyntheticHistogram) {
  uint64_t Hist[NumPauseBuckets] = {};
  // Empty histogram: no pauses, every percentile is 0.
  EXPECT_EQ(pausePercentileUs(Hist, 0.5, 0), 0u);
  EXPECT_EQ(pausePercentileUs(Hist, 0.999, 0), 0u);

  // 90 pauses in bucket 3 ([8,16) us), 9 in bucket 6 ([64,128) us), 1 in
  // bucket 9 ([512,1024) us). Ranks: p50 -> 45th, p99 -> 100th*0.99 = 99th,
  // p999 -> ceil(99.9) = 100th.
  Hist[3] = 90;
  Hist[6] = 9;
  Hist[9] = 1;
  uint64_t MaxNanos = 700 * 1000; // Largest observed pause: 700 us.
  EXPECT_EQ(pausePercentileUs(Hist, 0.50, MaxNanos), 15u);
  EXPECT_EQ(pausePercentileUs(Hist, 0.90, MaxNanos), 15u);
  EXPECT_EQ(pausePercentileUs(Hist, 0.99, MaxNanos), 127u);
  // p999 lands in the last occupied bucket, whose upper edge (1023 us)
  // exceeds the largest observed pause -- the estimate must clamp to it.
  EXPECT_EQ(pausePercentileUs(Hist, 0.999, MaxNanos), 700u);
  EXPECT_EQ(pausePercentileUs(Hist, 1.0, MaxNanos), 700u);
}

TEST(PauseHistTest, PercentileSinglePauseClampsToObservedMax) {
  uint64_t Hist[NumPauseBuckets] = {};
  Hist[0] = 1; // One sub-2us pause, observed max 1.5 us.
  EXPECT_EQ(pausePercentileUs(Hist, 0.5, 1500), 1u);
  // A pause in the open-ended last bucket has no finite edge; the observed
  // max is the only honest bound.
  uint64_t Tail[NumPauseBuckets] = {};
  Tail[NumPauseBuckets - 1] = 1;
  EXPECT_EQ(pausePercentileUs(Tail, 0.99, 90'000'000'000ull), 90'000'000u);
}

TEST(PauseHistTest, SnapshotPercentilesComeFromLiveHistogram) {
  // End-to-end: force GC cycles and check the snapshot's percentile agrees
  // with recomputing from its own histogram, and is bounded by the max.
  Heap H;
  TestRoots R;
  H.setRootScanner(&R);
  for (int I = 0; I < 64; ++I)
    R.Direct.push_back(H.allocate(64, scalarDesc(), AllocCat::Other, 0));
  for (int I = 0; I < 5; ++I)
    H.runGc();
  StatsSnapshot S = H.stats().snap();
  ASSERT_GT(S.GcPauses, 0u);
  uint64_t Total = 0;
  for (int B = 0; B < NumPauseBuckets; ++B)
    Total += S.GcPauseHist[B];
  EXPECT_EQ(Total, S.GcPauses) << "every pause lands in exactly one bucket";
  EXPECT_EQ(S.pausePercentileUs(0.99),
            pausePercentileUs(S.GcPauseHist, 0.99, S.GcMaxPauseNanos));
  EXPECT_LE(S.pausePercentileUs(0.5), S.pausePercentileUs(0.99));
  EXPECT_LE(S.pausePercentileUs(0.99), S.pausePercentileUs(0.999));
  EXPECT_LE(S.pausePercentileUs(0.999) * 1000, S.GcMaxPauseNanos);
}
