//===- tests/AdvancedInterpTest.cpp - Deeper semantic coverage ------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Corner-case semantics that the escape analysis and runtime must not
// disturb: nested containers, structs with pointer-bearing fields under
// GC, shadowing, value-vs-reference behavior, deep defer stacks, and
// GC-through-struct-field chains.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;

namespace {

uint64_t runMode(const std::string &Src, CompileMode Mode,
                 const std::vector<int64_t> &Args, ExecOptions EO = {}) {
  CompileOptions CO;
  CO.Mode = Mode;
  Compilation C = compile(Src, CO);
  EXPECT_TRUE(C.ok()) << C.Errors;
  ExecOutcome O = execute(C, "main", Args, EO);
  EXPECT_TRUE(O.Run.ok()) << O.Run.Error;
  return O.Run.Checksum;
}

/// Runs under Go, GoFree, GoFree+tight-GC, GoFree+poison: all four must
/// produce one checksum, returned for comparison with an expected program.
uint64_t everyWay(const std::string &Src,
                  const std::vector<int64_t> &Args = {}) {
  uint64_t Go = runMode(Src, CompileMode::Go, Args);
  uint64_t Free = runMode(Src, CompileMode::GoFree, Args);
  ExecOptions Tight;
  Tight.Heap.Gc.MinHeapTrigger = 16 * 1024;
  uint64_t Stressed = runMode(Src, CompileMode::GoFree, Args, Tight);
  ExecOptions Poison;
  Poison.Heap.Mock = rt::MockTcfree::Flip;
  uint64_t Poisoned = runMode(Src, CompileMode::GoFree, Args, Poison);
  EXPECT_EQ(Go, Free);
  EXPECT_EQ(Go, Stressed);
  EXPECT_EQ(Go, Poisoned);
  return Go;
}

uint64_t expect(const std::string &Sinks) {
  return runMode("func main() {\n" + Sinks + "}\n", CompileMode::Go, {});
}

} // namespace

TEST(AdvancedInterpTest, NestedMaps) {
  EXPECT_EQ(everyWay("func main() {\n"
                     "  outer := make(map[int]map[int]int)\n"
                     "  for i := 0; i < 10; i = i + 1 {\n"
                     "    inner := make(map[int]int)\n"
                     "    for j := 0; j < 10; j = j + 1 {\n"
                     "      inner[j] = i*10 + j\n"
                     "    }\n"
                     "    outer[i] = inner\n"
                     "  }\n"
                     "  m := outer[7]\n"
                     "  sink(m[3])\n"
                     "  sink(len(outer))\n"
                     "}\n"),
            expect("sink(73)\nsink(10)\n"));
}

TEST(AdvancedInterpTest, SliceOfSlices) {
  EXPECT_EQ(everyWay("func main(n int) {\n"
                     "  rows := make([][]int, 0)\n"
                     "  for i := 0; i < n; i = i + 1 {\n"
                     "    row := make([]int, i + 1)\n"
                     "    row[i] = i * i\n"
                     "    rows = append(rows, row)\n"
                     "  }\n"
                     "  total := 0\n"
                     "  for i := 0; i < len(rows); i = i + 1 {\n"
                     "    r := rows[i]\n"
                     "    total = total + r[len(r) - 1]\n"
                     "  }\n"
                     "  sink(total)\n" // sum of squares 0..9 = 285
                     "}\n",
                     {10}),
            expect("sink(285)\n"));
}

TEST(AdvancedInterpTest, StructsWithContainerFields) {
  EXPECT_EQ(everyWay("type Bag struct {\n"
                     "  items []int\n"
                     "  index map[int]int\n"
                     "  next  *Bag\n"
                     "}\n"
                     "func main(n int) {\n"
                     "  var head *Bag\n"
                     "  for i := 0; i < n; i = i + 1 {\n"
                     "    b := &Bag{items: make([]int, 3),\n"
                     "              index: make(map[int]int), next: head}\n"
                     "    b.items[0] = i\n"
                     "    b.index[i] = i * 2\n"
                     "    head = b\n"
                     "  }\n"
                     "  total := 0\n"
                     "  for head != nil {\n"
                     "    total = total + head.items[0] + head.index[head.items[0]]\n"
                     "    head = head.next\n"
                     "  }\n"
                     "  sink(total)\n" // sum 3i for i in 0..n-1
                     "}\n",
                     {100}),
            expect("sink(14850)\n"));
}

TEST(AdvancedInterpTest, ShadowingInNestedScopes) {
  EXPECT_EQ(everyWay("func main() {\n"
                     "  x := 1\n"
                     "  {\n"
                     "    x := 2\n"
                     "    {\n"
                     "      x := 3\n"
                     "      sink(x)\n"
                     "    }\n"
                     "    sink(x)\n"
                     "  }\n"
                     "  sink(x)\n"
                     "}\n"),
            expect("sink(3)\nsink(2)\nsink(1)\n"));
}

TEST(AdvancedInterpTest, StructValueSemanticsThroughCalls) {
  EXPECT_EQ(everyWay("type P struct { x int\n y int\n }\n"
                     "func bump(p P) int {\n"
                     "  p.x = p.x + 100\n" // Callee mutates its copy only.
                     "  return p.x\n"
                     "}\n"
                     "func main() {\n"
                     "  p := P{x: 1, y: 2}\n"
                     "  sink(bump(p))\n"
                     "  sink(p.x)\n"
                     "}\n"),
            expect("sink(101)\nsink(1)\n"));
}

TEST(AdvancedInterpTest, PointerToStructFieldMutation) {
  EXPECT_EQ(everyWay("type P struct { x int\n y int\n }\n"
                     "func main() {\n"
                     "  p := P{x: 1, y: 2}\n"
                     "  px := &p.x\n"
                     "  *px = 50\n"
                     "  sink(p.x)\n"
                     "}\n"),
            expect("sink(50)\n"));
}

TEST(AdvancedInterpTest, DeferStacksAcrossLoop) {
  EXPECT_EQ(everyWay("func note(x int) {\n  sink(x)\n}\n"
                     "func f() {\n"
                     "  for i := 0; i < 3; i = i + 1 {\n"
                     "    defer note(i)\n" // Runs 2,1,0 at function exit.
                     "  }\n"
                     "  sink(9)\n"
                     "}\n"
                     "func main() {\n  f()\n}\n"),
            expect("sink(9)\nsink(2)\nsink(1)\nsink(0)\n"));
}

TEST(AdvancedInterpTest, MapWithStructValues) {
  EXPECT_EQ(everyWay("type Pt struct { x int\n y int\n }\n"
                     "func main() {\n"
                     "  m := make(map[int]Pt)\n"
                     "  for i := 0; i < 50; i = i + 1 {\n"
                     "    m[i] = Pt{x: i, y: i * 2}\n"
                     "  }\n"
                     "  p := m[20]\n"
                     "  sink(p.x + p.y)\n"
                     "  q := m[999]\n" // Missing: zero-valued struct.
                     "  sink(q.x + q.y)\n"
                     "}\n"),
            expect("sink(60)\nsink(0)\n"));
}

TEST(AdvancedInterpTest, BigConstantSliceForcedToHeapBySize) {
  // 100k ints = 800KB > the 64KB stack limit: heap even with const size.
  CompileOptions CO;
  Compilation C = compile("func main() {\n"
                          "  big := make([]int, 100000)\n"
                          "  big[99999] = 5\n"
                          "  sink(big[99999])\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main");
  ASSERT_TRUE(O.Run.ok());
  EXPECT_GT(O.Stats.AllocCountByCat[(int)rt::AllocCat::Slice], 0u);
  // And being a large object, its tcfree takes the two-step path.
  EXPECT_GT(O.Stats.tcfreeFreedBytes(), 790000u);
}

TEST(AdvancedInterpTest, RecursiveStructOverGcPressure) {
  // A binary-tree build/sum with churn: exercises struct pointer maps
  // under collection.
  ExecOptions EO;
  EO.Heap.Gc.MinHeapTrigger = 32 * 1024;
  const char *Src = "type Node struct { v int\n l *Node\n r *Node\n }\n"
                    "func build(d int, v int) *Node {\n"
                    "  if d == 0 { return nil }\n"
                    "  n := &Node{v: v, l: build(d-1, v*2), r: build(d-1, v*2+1)}\n"
                    "  return n\n"
                    "}\n"
                    "func total(n *Node) int {\n"
                    "  if n == nil { return 0 }\n"
                    "  return n.v + total(n.l) + total(n.r)\n"
                    "}\n"
                    "func main(d int) {\n"
                    "  acc := 0\n"
                    "  for r := 0; r < 20; r = r + 1 {\n"
                    "    t := build(d, 1)\n"
                    "    scratch := make([]int, r*37 + 11)\n"
                    "    scratch[0] = total(t)\n"
                    "    acc = acc + scratch[0]\n"
                    "  }\n"
                    "  sink(acc)\n"
                    "}\n";
  uint64_t Go = runMode(Src, CompileMode::Go, {8}, EO);
  uint64_t Free = runMode(Src, CompileMode::GoFree, {8}, EO);
  EXPECT_EQ(Go, Free);
}

TEST(AdvancedInterpTest, MultiAssignSwapThroughCalls) {
  EXPECT_EQ(everyWay("func swap(a int, b int) (int, int) {\n"
                     "  return b, a\n"
                     "}\n"
                     "func main() {\n"
                     "  x, y := swap(1, 2)\n"
                     "  x, y = swap(x, y)\n"
                     "  sink(x*10 + y)\n"
                     "}\n"),
            expect("sink(12)\n"));
}

TEST(AdvancedInterpTest, BoolLogicAndComparisonChains) {
  EXPECT_EQ(everyWay("func main() {\n"
                     "  t := true\n"
                     "  f := false\n"
                     "  if t && !f || f { sink(1) }\n"
                     "  if (1 < 2) == t { sink(2) }\n"
                     "  b := 3 >= 3\n"
                     "  if b != f { sink(3) }\n"
                     "}\n"),
            expect("sink(1)\nsink(2)\nsink(3)\n"));
}

TEST(AdvancedInterpTest, StructReturnedByValueSurvivesFrame) {
  // The struct value is built in the callee's frame; the caller must see a
  // stable copy after that frame dies (and after GC/poison churn).
  EXPECT_EQ(everyWay("type P struct { x int\n y int\n }\n"
                     "func mk(a int) P {\n"
                     "  p := P{x: a, y: a * 2}\n"
                     "  return p\n"
                     "}\n"
                     "func main() {\n"
                     "  q := mk(7)\n"
                     "  r := mk(9)\n"
                     "  sink(q.x + q.y + r.x)\n"
                     "}\n"),
            expect("sink(7 + 14 + 9)\n"));
}

TEST(AdvancedInterpTest, StructReturnedThroughCallChain) {
  EXPECT_EQ(everyWay("type P struct { x int\n y int\n }\n"
                     "func inner(a int) P {\n"
                     "  return P{x: a, y: a + 1}\n"
                     "}\n"
                     "func outer(a int) P {\n"
                     "  p := inner(a)\n"
                     "  p.x = p.x * 10\n"
                     "  return p\n"
                     "}\n"
                     "func main() {\n"
                     "  p := outer(3)\n"
                     "  sink(p.x + p.y)\n" // 30 + 4
                     "}\n"),
            expect("sink(34)\n"));
}

TEST(AdvancedInterpTest, StructWithSliceFieldReturnedByValue) {
  // The header inside the struct copy must stay GC-visible through the
  // caller's frame scan.
  ExecOptions Tight;
  Tight.Heap.Gc.MinHeapTrigger = 16 * 1024;
  CompileOptions CO;
  Compilation C = compile("type Buf struct { data []int\n n int\n }\n"
                          "func mk(sz int) Buf {\n"
                          "  b := Buf{data: make([]int, sz), n: sz}\n"
                          "  b.data[0] = sz * 3\n"
                          "  return b\n"
                          "}\n"
                          "func main(n int) {\n"
                          "  b := mk(n)\n"
                          "  churn := 0\n"
                          "  for i := 0; i < 1000; i = i + 1 {\n"
                          "    t := make([]int, i%40 + 10)\n"
                          "    t[0] = i\n"
                          "    churn = churn + t[0]\n"
                          "  }\n"
                          "  sink(b.data[0] + churn % 3)\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok()) << C.Errors;
  ExecOutcome O = execute(C, "main", {50}, {{}, {}});
  ExecOutcome T = execute(C, "main", {50}, ExecOptions{Tight.Heap, {}});
  ASSERT_TRUE(O.Run.ok() && T.Run.ok());
  EXPECT_EQ(O.Run.Checksum, T.Run.Checksum);
}
