//===- tests/EscapeTest.cpp - Unit tests for the escape analysis ----------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// These tests pin down the behaviors the paper describes: figure 1's
// completeness example, figure 3's stack/heap split, figure 6's nested
// scopes, figure 7's inter-procedural content tags, and the individual
// property definitions of section 4.
//
//===----------------------------------------------------------------------===//

#include "escape/Analysis.h"
#include "minigo/Frontend.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::escape;
using namespace gofree::minigo;

namespace {

struct Compiled {
  std::unique_ptr<Program> Prog;
  ProgramAnalysis Analysis;

  const FuncDecl *func(const std::string &Name) const {
    const FuncDecl *Fn = Prog->findFunc(Name);
    EXPECT_NE(Fn, nullptr) << "no function " << Name;
    return Fn;
  }

  const VarDecl *var(const std::string &FnName, const std::string &VName) const {
    const FuncDecl *Fn = func(FnName);
    for (const VarDecl *V : Fn->AllVars)
      if (V->Name == VName)
        return V;
    ADD_FAILURE() << "no variable " << VName << " in " << FnName;
    return nullptr;
  }

  const Location &locOf(const std::string &FnName,
                        const std::string &VName) const {
    const FuncDecl *Fn = func(FnName);
    const BuildResult &B = Analysis.FuncGraphs.at(Fn);
    return B.Graph.loc(B.VarLoc.at(var(FnName, VName)));
  }

  /// The location of the AllocId-th allocation site of the whole program.
  const Location &allocLoc(const std::string &FnName, uint32_t AllocId) const {
    const BuildResult &B = Analysis.FuncGraphs.at(func(FnName));
    return B.Graph.loc(B.AllocLoc.at(AllocId));
  }

  bool toFree(const std::string &FnName, const std::string &VName) const {
    return Analysis.ToFreeVars.count(var(FnName, VName)) != 0;
  }
};

Compiled analyze(const std::string &Src, AnalysisOptions Opts = {}) {
  DiagSink Diags;
  Compiled C;
  C.Prog = parseAndCheck(Src, Diags);
  EXPECT_NE(C.Prog, nullptr) << Diags.dump();
  if (C.Prog)
    C.Analysis = analyzeProgram(*C.Prog, Opts);
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 3: stack allocation vs explicit deallocation
//===----------------------------------------------------------------------===//

TEST(EscapeTest, Fig3ConstSizeStacksVariableSizeFreed) {
  Compiled C = analyze("func analyses(n int) {\n"
                       "  s1 := make([]int, 335)\n"
                       "  sink(len(s1))\n"
                       "  for i := 1; i < n; i = i + 1 {\n"
                       "    s2 := make([]int, i)\n"
                       "    sink(len(s2))\n"
                       "  }\n"
                       "}\n");
  // make1 is constant-size and non-escaping: stack-allocated.
  EXPECT_FALSE(C.locOf("analyses", "s1").PointsToHeap);
  EXPECT_TRUE(C.Analysis.SiteOnStack[0]);
  // make2 has variable size: heap-allocated, and explicitly freeable.
  EXPECT_FALSE(C.Analysis.SiteOnStack[1]);
  EXPECT_TRUE(C.locOf("analyses", "s2").PointsToHeap);
  EXPECT_TRUE(C.toFree("analyses", "s2"));
  EXPECT_FALSE(C.toFree("analyses", "s1"));
}

//===----------------------------------------------------------------------===//
// Figure 1 / table 3: completeness analysis around indirect stores
//===----------------------------------------------------------------------===//

TEST(EscapeTest, Fig1IndirectStoreMakesDerivedPointerIncomplete) {
  // Modeled after fig. 1: *ppd = pc is an untracked indirect store, so
  // pd2 = *ppd has an incomplete points-to set and must not be freed.
  Compiled C = analyze("type D struct { v int\n }\n"
                       "func f() {\n"
                       "  c := D{v: 1}\n"
                       "  d := D{v: 2}\n"
                       "  pd := &d\n"
                       "  ppd := &pd\n"
                       "  pc := &c\n"
                       "  *ppd = pc\n"
                       "  pd2 := *ppd\n"
                       "  sink(pd2.v)\n"
                       "}\n");
  const Location &Ppd = C.locOf("f", "ppd");
  const Location &Pc = C.locOf("f", "pc");
  const Location &Pd = C.locOf("f", "pd");
  const Location &Pd2 = C.locOf("f", "pd2");
  // ppd is the destination of the indirect store: it exposes its pointees.
  EXPECT_TRUE(Ppd.ExposesStore);
  // pc's value went into an untracked place, exposing c.
  EXPECT_TRUE(Pc.ExposesStore);
  // pc itself remains complete: all writes to pc are tracked.
  EXPECT_FALSE(Pc.incomplete());
  // pd's cell may have been overwritten through ppd: incomplete.
  EXPECT_TRUE(Pd.incomplete());
  // pd2 derives its value from pd: incomplete, never freed.
  EXPECT_TRUE(Pd2.incomplete());
  EXPECT_FALSE(Pd2.ToFree);
}

TEST(EscapeTest, Fig1PointsToSetThroughGoGraph) {
  // PointsTo(pd2) computed from the Go escape graph contains d (via the
  // tracked flow) but misses c (the indirect store), cf. table 3.
  Compiled C = analyze("type D struct { v int\n }\n"
                       "func f() {\n"
                       "  c := D{v: 1}\n"
                       "  d := D{v: 2}\n"
                       "  pd := &d\n"
                       "  ppd := &pd\n"
                       "  pc := &c\n"
                       "  *ppd = pc\n"
                       "  pd2 := *ppd\n"
                       "  sink(pd2.v)\n"
                       "}\n");
  const FuncDecl *Fn = C.func("f");
  const BuildResult &B = C.Analysis.FuncGraphs.at(Fn);
  auto Pts = pointsToSet(B.Graph, B.VarLoc.at(C.var("f", "pd2")));
  bool HasD = false, HasC = false;
  for (uint32_t Id : Pts) {
    const Location &L = B.Graph.loc(Id);
    HasD |= L.Name == "d";
    HasC |= L.Name == "c";
  }
  EXPECT_TRUE(HasD);
  EXPECT_FALSE(HasC) << "Go's graph omits the indirect store";
}

TEST(EscapeTest, IndirectStoreForcesValueToHeap) {
  // The stored pointer's referent must be heap allocated (it may now be
  // reachable from anywhere).
  Compiled C = analyze("type D struct { v int\n }\n"
                       "func f(pp **D) {\n"
                       "  c := D{v: 1}\n"
                       "  *pp = &c\n"
                       "}\n"
                       "func main() {\n"
                       "  d := D{v: 0}\n"
                       "  p := &d\n"
                       "  f(&p)\n"
                       "  sink(p.v)\n"
                       "}\n");
  EXPECT_TRUE(C.locOf("f", "c").HeapAlloc);
  EXPECT_TRUE(C.Analysis.MovedToHeap.count(C.var("f", "c")));
}

//===----------------------------------------------------------------------===//
// Lifetime analysis (figure 6)
//===----------------------------------------------------------------------===//

TEST(EscapeTest, Fig6NestedScopes) {
  Compiled C = analyze("func g(n int) []int {\n"
                       "  s1 := make([]int, n)\n"
                       "  {\n"
                       "    s2 := make([]int, n)\n"
                       "    sink(s2[0])\n"
                       "  }\n"
                       "  s3 := make([]int, n)\n"
                       "  sink(s1[0] + s3[0])\n"
                       "  return s3\n"
                       "}\n");
  // s1 and s2 are complete and not outlived: freeable at their scope ends.
  EXPECT_TRUE(C.toFree("g", "s1"));
  EXPECT_TRUE(C.toFree("g", "s2"));
  // s3's array flows to the return value: outlived, not freeable.
  EXPECT_TRUE(C.locOf("g", "s3").Outlived);
  EXPECT_FALSE(C.toFree("g", "s3"));
}

TEST(EscapeTest, OutlivedByOuterScopeAlias) {
  // The inner slice's array is also held by an outer-scope variable, so the
  // inner pointer is outlived and must not free it.
  Compiled C = analyze("func f(n int) {\n"
                       "  var keep []int\n"
                       "  {\n"
                       "    s := make([]int, n)\n"
                       "    keep = s\n"
                       "  }\n"
                       "  sink(keep[0])\n"
                       "}\n");
  EXPECT_TRUE(C.locOf("f", "s").Outlived);
  EXPECT_FALSE(C.toFree("f", "s"));
  // The outer alias itself is complete, not outlived, and freeable.
  EXPECT_TRUE(C.toFree("f", "keep"));
}

TEST(EscapeTest, LoopDepthForcesHeap) {
  // A pointer declared outside the loop keeps an object allocated inside
  // the loop alive across iterations (definition 4.10's LoopDepth rule).
  Compiled C = analyze("type T struct { v int\n }\n"
                       "func f(n int) {\n"
                       "  var keep *T\n"
                       "  for i := 0; i < n; i = i + 1 {\n"
                       "    t := &T{v: i}\n"
                       "    keep = t\n"
                       "  }\n"
                       "  sink(keep.v)\n"
                       "}\n");
  // The allocation site of &T{} must be on the heap.
  EXPECT_FALSE(C.Analysis.SiteOnStack[0]);
}

TEST(EscapeTest, NonEscapingLiteralStaysOnStack) {
  Compiled C = analyze("type T struct { v int\n }\n"
                       "func f() {\n"
                       "  t := &T{v: 3}\n"
                       "  sink(t.v)\n"
                       "}\n");
  EXPECT_TRUE(C.Analysis.SiteOnStack[0]);
  EXPECT_FALSE(C.locOf("f", "t").PointsToHeap);
}

TEST(EscapeTest, ReturnedObjectIsHeap) {
  Compiled C = analyze("type T struct { v int\n }\n"
                       "func f() *T {\n"
                       "  t := &T{v: 3}\n"
                       "  return t\n"
                       "}\n");
  EXPECT_FALSE(C.Analysis.SiteOnStack[0]);
  EXPECT_TRUE(C.locOf("f", "t").Outlived);
  EXPECT_FALSE(C.toFree("f", "t"));
}

//===----------------------------------------------------------------------===//
// Inter-procedural analysis (figure 7)
//===----------------------------------------------------------------------===//

TEST(EscapeTest, Fig7ContentTagEnablesCallerFree) {
  Compiled C = analyze("func partialNew(ps *[]int) ([]int, []int) {\n"
                       "  pps := &ps\n"
                       "  *pps = ps\n"
                       "  made := make([]int, 3)\n"
                       "  return made, **pps\n"
                       "}\n"
                       "func caller(n int) {\n"
                       "  s := make([]int, n)\n"
                       "  fresh, old := partialNew(&s)\n"
                       "  sink(fresh[0] + old[0])\n"
                       "}\n");
  // The callee's tag must advertise: r0 is a fresh heap object, r1 is not
  // known to be complete.
  const FuncTag &Tag = C.Analysis.Tags.at(C.func("partialNew"));
  ASSERT_EQ(Tag.RetPointsToHeap.size(), 2u);
  EXPECT_TRUE(Tag.RetPointsToHeap[0]);
  // In the caller, fresh can be freed; old (an alias of s's array seen
  // through the callee) must not be freed via `old`.
  EXPECT_TRUE(C.toFree("caller", "fresh"));
  EXPECT_FALSE(C.toFree("caller", "old"));
}

TEST(EscapeTest, CalleeIndirectStoreReachesCallerViaTag) {
  // The callee stores through its parameter; the caller's object pointed to
  // by the argument becomes incomplete.
  Compiled C = analyze("type T struct { p *int\n }\n"
                       "func poke(t *T, v *int) {\n"
                       "  t.p = v\n"
                       "}\n"
                       "func main() {\n"
                       "  x := 1\n"
                       "  t := &T{p: &x}\n"
                       "  y := 2\n"
                       "  poke(t, &y)\n"
                       "  sink(*t.p)\n"
                       "}\n");
  const FuncTag &Tag = C.Analysis.Tags.at(C.func("poke"));
  ASSERT_EQ(Tag.ParamExposes.size(), 2u);
  EXPECT_TRUE(Tag.ParamExposes[0]);
}

TEST(EscapeTest, FactoryThroughCallIsFreeable) {
  Compiled C = analyze("func produce(n int) []int {\n"
                       "  buf := make([]int, n)\n"
                       "  return buf\n"
                       "}\n"
                       "func consume(n int) {\n"
                       "  tmp := produce(n)\n"
                       "  sink(tmp[0])\n"
                       "}\n");
  // Intra-procedurally buf escapes; through the content tag the caller can
  // still free the object.
  EXPECT_FALSE(C.toFree("produce", "buf"));
  EXPECT_TRUE(C.toFree("consume", "tmp"));
}

TEST(EscapeTest, RecursiveCallUsesDefaultTag) {
  Compiled C = analyze("func rec(n int) []int {\n"
                       "  if n == 0 {\n"
                       "    return make([]int, 1)\n"
                       "  }\n"
                       "  r := rec(n - 1)\n"
                       "  return r\n"
                       "}\n"
                       "func main() {\n"
                       "  q := rec(3)\n"
                       "  sink(q[0])\n"
                       "}\n");
  // Inside the cycle the default tag applies: r comes "from the heap" and
  // is incomplete.
  EXPECT_TRUE(C.locOf("rec", "r").incomplete());
  EXPECT_FALSE(C.toFree("rec", "r"));
  // The caller outside the cycle still benefits from rec's extracted tag:
  // the result points to heap...
  EXPECT_TRUE(C.locOf("main", "q").PointsToHeap);
  // ...but the default-tag incompleteness inside rec flows into the tag,
  // so q stays unfreed (conservative and sound).
  EXPECT_FALSE(C.toFree("main", "q"));
}

TEST(EscapeTest, ReturnedParamAliasingFlowsThroughTag) {
  // identity(): a function returning its argument. The caller's points-to
  // information must flow through the tag edge.
  Compiled C = analyze("func identity(s []int) []int {\n"
                       "  return s\n"
                       "}\n"
                       "func main(n int) {\n"
                       "  a := make([]int, n)\n"
                       "  b := identity(a)\n"
                       "  sink(b[0])\n"
                       "}\n");
  const FuncTag &Tag = C.Analysis.Tags.at(C.func("identity"));
  ASSERT_EQ(Tag.Edges.size(), 1u);
  EXPECT_EQ(Tag.Edges[0].Derefs, 0);
  // The callee must not advertise a fresh heap object for its result.
  EXPECT_FALSE(Tag.RetPointsToHeap[0]);
  // Both caller names alias the same array in the same scope; freeing via
  // either is sound (tcfree tolerates the double free, section 5), and the
  // analysis keeps both complete.
  EXPECT_TRUE(C.locOf("main", "a").PointsToHeap);
  EXPECT_FALSE(C.locOf("main", "a").incomplete());
}

//===----------------------------------------------------------------------===//
// Language features (section 4.6)
//===----------------------------------------------------------------------===//

TEST(EscapeTest, AppendCreatesHeapContent) {
  Compiled C = analyze("func f(n int) {\n"
                       "  s := make([]int, 0, 4)\n"
                       "  for i := 0; i < n; i = i + 1 {\n"
                       "    s = append(s, i)\n"
                       "  }\n"
                       "  sink(s[0])\n"
                       "}\n");
  // Even though make() had constant size, appending models a possible heap
  // reallocation, so s may point to heap and is freeable.
  EXPECT_TRUE(C.locOf("f", "s").PointsToHeap);
  EXPECT_TRUE(C.toFree("f", "s"));
}

TEST(EscapeTest, AppendedPointerValueEscapes) {
  Compiled C = analyze("type T struct { v int\n }\n"
                       "func f(n int) {\n"
                       "  s := make([]*T, 0)\n"
                       "  t := &T{v: 1}\n"
                       "  s = append(s, t)\n"
                       "  sink(s[0].v)\n"
                       "}\n");
  // The appended pointer goes through an untracked store: its referent is
  // heap-allocated.
  const FuncDecl *Fn = C.func("f");
  const BuildResult &B = C.Analysis.FuncGraphs.at(Fn);
  bool FoundLitOnHeap = false;
  for (const Location &L : B.Graph.locations())
    if (L.Kind == LocKind::Alloc && L.Name.rfind("lit@", 0) == 0)
      FoundLitOnHeap = L.HeapAlloc;
  EXPECT_TRUE(FoundLitOnHeap);
}

TEST(EscapeTest, SmallConstMapCanStack) {
  Compiled C = analyze("func f() {\n"
                       "  m := make(map[int]int, 4)\n"
                       "  m[1] = 2\n"
                       "  sink(m[1])\n"
                       "}\n");
  EXPECT_TRUE(C.Analysis.SiteOnStack[0]);
  EXPECT_FALSE(C.toFree("f", "m"));
}

TEST(EscapeTest, LargeOrDynamicMapIsFreed) {
  Compiled C = analyze("func f(n int) {\n"
                       "  m := make(map[int]int, n)\n"
                       "  m[1] = 2\n"
                       "  sink(m[1])\n"
                       "}\n");
  EXPECT_FALSE(C.Analysis.SiteOnStack[0]);
  EXPECT_TRUE(C.toFree("f", "m"));
}

TEST(EscapeTest, DeferBansFreeing) {
  Compiled C = analyze("func use(s []int) {\n"
                       "  sink(s[0])\n"
                       "}\n"
                       "func f(n int) {\n"
                       "  s := make([]int, n)\n"
                       "  defer use(s)\n"
                       "  sink(s[0])\n"
                       "}\n");
  EXPECT_FALSE(C.toFree("f", "s"));
}

TEST(EscapeTest, MultipleReturnValuesAnalyzedIndependently) {
  // A function that is a factory for one result but not the other
  // (section 4.6.3).
  Compiled C = analyze("func mixed(s []int, n int) ([]int, []int) {\n"
                       "  fresh := make([]int, n)\n"
                       "  return fresh, s\n"
                       "}\n"
                       "func main(n int) {\n"
                       "  a := make([]int, n)\n"
                       "  f, old := mixed(a, n)\n"
                       "  sink(f[0] + old[0])\n"
                       "}\n");
  const FuncTag &Tag = C.Analysis.Tags.at(C.func("mixed"));
  EXPECT_TRUE(Tag.RetPointsToHeap[0]);
  EXPECT_FALSE(Tag.RetPointsToHeap[1]);
  EXPECT_TRUE(C.toFree("main", "f"));
}

//===----------------------------------------------------------------------===//
// Solver mechanics
//===----------------------------------------------------------------------===//

TEST(EscapeTest, BackPropagationDisabledLosesIncompleteness) {
  const char *Src = "type D struct { v int\n }\n"
                    "func f() {\n"
                    "  c := D{v: 1}\n"
                    "  d := D{v: 2}\n"
                    "  pd := &d\n"
                    "  ppd := &pd\n"
                    "  pc := &c\n"
                    "  *ppd = pc\n"
                    "  pd2 := *ppd\n"
                    "  sink(pd2.v)\n"
                    "}\n";
  AnalysisOptions NoBack;
  NoBack.Solve.BackPropagation = false;
  Compiled C = analyze(Src, NoBack);
  // Without leaf-to-root back-propagation, pd's incompleteness never
  // reaches pd2 (the ablation the solver option exists for).
  EXPECT_TRUE(C.locOf("f", "pd").incomplete());
  EXPECT_FALSE(C.locOf("f", "pd2").incomplete());
}

TEST(EscapeTest, ParamsAreSeededIncomplete) {
  Compiled C = analyze("func f(s []int) {\n"
                       "  t := s\n"
                       "  sink(t[0])\n"
                       "}\n");
  EXPECT_TRUE(C.locOf("f", "s").IncompleteParam);
  EXPECT_TRUE(C.locOf("f", "t").IncompleteParam);
  EXPECT_FALSE(C.toFree("f", "t"));
}

TEST(EscapeTest, SolverIsIdempotent) {
  const char *Src = "func g(n int) []int {\n"
                    "  s1 := make([]int, n)\n"
                    "  s3 := make([]int, n)\n"
                    "  sink(s1[0])\n"
                    "  return s3\n"
                    "}\n";
  Compiled A = analyze(Src);
  Compiled B = analyze(Src);
  const BuildResult &Ba = A.Analysis.FuncGraphs.at(A.func("g"));
  const BuildResult &Bb = B.Analysis.FuncGraphs.at(B.func("g"));
  ASSERT_EQ(Ba.Graph.size(), Bb.Graph.size());
  for (uint32_t I = 0; I < Ba.Graph.size(); ++I) {
    const Location &La = Ba.Graph.loc(I);
    const Location &Lb = Bb.Graph.loc(I);
    EXPECT_EQ(La.HeapAlloc, Lb.HeapAlloc);
    EXPECT_EQ(La.incomplete(), Lb.incomplete());
    EXPECT_EQ(La.Outlived, Lb.Outlived);
    EXPECT_EQ(La.ToFree, Lb.ToFree);
  }
}

TEST(EscapeTest, PointerTargets) {
  // FreeTargets::All extends freeing to plain pointers.
  const char *Src = "type T struct { v int\n }\n"
                    "func f(n int) {\n"
                    "  t := new(T)\n"
                    "  t.v = n\n"
                    "  sink(t.v)\n"
                    "}\n";
  Compiled Default = analyze(Src);
  // new(T) with constant size that does not escape is stack allocated, so
  // even FreeTargets::All has nothing to free here.
  EXPECT_TRUE(Default.Analysis.SiteOnStack[0]);

  const char *Escaping = "type T struct { v int\n }\n"
                         "func mk(n int) *T {\n"
                         "  t := new(T)\n"
                         "  t.v = n\n"
                         "  return t\n"
                         "}\n"
                         "func f(n int) {\n"
                         "  t := mk(n)\n"
                         "  sink(t.v)\n"
                         "}\n";
  AnalysisOptions All;
  All.Targets = FreeTargets::All;
  Compiled WithAll = analyze(Escaping, All);
  EXPECT_TRUE(WithAll.toFree("f", "t"));
  Compiled SliceMapOnly = analyze(Escaping);
  EXPECT_FALSE(SliceMapOnly.toFree("f", "t"));
}
