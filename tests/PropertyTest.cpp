//===- tests/PropertyTest.cpp - Property tests over generated programs ----===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Property-based sweeps over randomly generated (but always well-typed)
// MiniGo programs. The invariants:
//
//   1. Go and GoFree builds produce identical observable behavior.
//   2. A poisoning tcfree never changes behavior (no live object freed).
//   3. Aggressive GC pacing never changes behavior (precise root scanning).
//   4. ToFree implies complete, not outlived, and points-to-heap, and is
//      never granted to parameters or escaped variables.
//   5. The solver is deterministic.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "workloads/Synth.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;
using namespace gofree::escape;
using namespace gofree::workloads;

namespace {

std::string sourceFor(uint64_t Seed) {
  SynthOptions SO;
  SO.Seed = Seed;
  SO.NumFuncs = 10;
  SO.StmtsPerFunc = 28;
  return synthProgram(SO);
}

} // namespace

class SynthPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthPropertyTest, GoFreeBehaviorMatchesGo) {
  std::string Src = sourceFor(GetParam());
  CompileOptions GoOpts;
  GoOpts.Mode = CompileMode::Go;
  Compilation Go = compile(Src, GoOpts);
  Compilation Free = compile(Src, {});
  ASSERT_TRUE(Go.ok() && Free.ok()) << Free.Errors;
  ExecOutcome A = execute(Go, "main", {35});
  ExecOutcome B = execute(Free, "main", {35});
  ASSERT_TRUE(A.Run.ok()) << A.Run.Error;
  ASSERT_TRUE(B.Run.ok()) << B.Run.Error;
  EXPECT_EQ(A.Run.Checksum, B.Run.Checksum);
  EXPECT_EQ(A.Run.SinkCount, B.Run.SinkCount);
}

TEST_P(SynthPropertyTest, PoisoningTcfreeIsInvisible) {
  std::string Src = sourceFor(GetParam());
  Compilation Free = compile(Src, {});
  ASSERT_TRUE(Free.ok());
  ExecOutcome Clean = execute(Free, "main", {35});
  for (rt::MockTcfree Mock : {rt::MockTcfree::Zero, rt::MockTcfree::Flip}) {
    ExecOptions EO;
    EO.Heap.Mock = Mock;
    ExecOutcome Poisoned = execute(Free, "main", {35}, EO);
    ASSERT_TRUE(Poisoned.Run.ok()) << Poisoned.Run.Error;
    EXPECT_EQ(Clean.Run.Checksum, Poisoned.Run.Checksum)
        << "seed " << GetParam() << ": live object freed";
  }
}

TEST_P(SynthPropertyTest, AggressiveGcPacingIsInvisible) {
  std::string Src = sourceFor(GetParam());
  Compilation Free = compile(Src, {});
  ASSERT_TRUE(Free.ok());
  ExecOutcome Relaxed = execute(Free, "main", {25});
  ExecOptions Tight;
  Tight.Heap.Gc.MinHeapTrigger = 8 * 1024; // Collect almost constantly.
  ExecOutcome Stressed = execute(Free, "main", {25}, Tight);
  ASSERT_TRUE(Stressed.Run.ok()) << Stressed.Run.Error;
  EXPECT_EQ(Relaxed.Run.Checksum, Stressed.Run.Checksum);
  EXPECT_GE(Stressed.Stats.GcCycles, Relaxed.Stats.GcCycles);
}

TEST_P(SynthPropertyTest, ToFreeInvariants) {
  std::string Src = sourceFor(GetParam());
  Compilation C = compile(Src, {});
  ASSERT_TRUE(C.ok());
  for (const auto &[Fn, Build] : C.Analysis.FuncGraphs) {
    (void)Fn;
    for (const Location &L : Build.Graph.locations()) {
      if (!L.ToFree)
        continue;
      EXPECT_FALSE(L.incomplete()) << L.Name;
      EXPECT_FALSE(L.Outlived) << L.Name;
      EXPECT_TRUE(L.PointsToHeap) << L.Name;
      if (L.Var) {
        EXPECT_FALSE(L.Var->IsParam) << L.Name;
      }
    }
  }
  // Every variable scheduled for freeing carries the ToFree property.
  for (const minigo::VarDecl *V : C.Analysis.ToFreeVars) {
    bool Found = false;
    for (const auto &[Fn, Build] : C.Analysis.FuncGraphs) {
      (void)Fn;
      auto It = Build.VarLoc.find(V);
      if (It != Build.VarLoc.end() && Build.Graph.loc(It->second).ToFree)
        Found = true;
    }
    EXPECT_TRUE(Found) << V->Name;
  }
}

TEST_P(SynthPropertyTest, AnalysisIsDeterministic) {
  std::string Src = sourceFor(GetParam());
  Compilation A = compile(Src, {});
  Compilation B = compile(Src, {});
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A.Analysis.SiteOnStack, B.Analysis.SiteOnStack);
  EXPECT_EQ(A.Analysis.ToFreeVars.size(), B.Analysis.ToFreeVars.size());
  EXPECT_EQ(A.Instr.total(), B.Instr.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

//===----------------------------------------------------------------------===//
// Cross-cutting: the full pipeline under one aggressive configuration
//===----------------------------------------------------------------------===//

TEST(StressTest, TightHeapManySeeds) {
  // Tiny GC trigger + poisoning tcfree + every seed: the harshest
  // combination must still be invisible.
  for (uint64_t Seed = 100; Seed < 106; ++Seed) {
    SynthOptions SO;
    SO.Seed = Seed;
    SO.NumFuncs = 8;
    SO.StmtsPerFunc = 35;
    std::string Src = synthProgram(SO);
    Compilation C = compile(Src, {});
    ASSERT_TRUE(C.ok());
    ExecOutcome Ref = execute(C, "main", {20});
    ExecOptions Harsh;
    Harsh.Heap.Gc.MinHeapTrigger = 4 * 1024;
    Harsh.Heap.Mock = rt::MockTcfree::Flip;
    ExecOutcome Out = execute(C, "main", {20}, Harsh);
    ASSERT_TRUE(Out.Run.ok()) << "seed " << Seed << ": " << Out.Run.Error;
    EXPECT_EQ(Ref.Run.Checksum, Out.Run.Checksum) << "seed " << Seed;
  }
}

TEST(StressTest, DeepCallChains) {
  SynthOptions SO;
  SO.Seed = 42;
  SO.NumFuncs = 60; // One long call chain.
  SO.StmtsPerFunc = 10;
  Compilation C = compile(synthProgram(SO), {});
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main", {10});
  ASSERT_TRUE(O.Run.ok()) << O.Run.Error;
  EXPECT_GT(O.Stats.AllocCount, 0u);
}

TEST_P(SynthPropertyTest, ThreadMigrationOnlyCostsGiveUps) {
  // Simulated P-migration makes tcfree hit its ownership give-up path;
  // behavior must not change and give-ups must actually occur.
  std::string Src = sourceFor(GetParam());
  Compilation Free = compile(Src, {});
  ASSERT_TRUE(Free.ok());
  ExecOutcome Pinned = execute(Free, "main", {30});
  ExecOptions Roaming;
  Roaming.Interp.MigrationPeriod = 97;
  ExecOutcome Moved = execute(Free, "main", {30}, Roaming);
  ASSERT_TRUE(Moved.Run.ok()) << Moved.Run.Error;
  EXPECT_EQ(Pinned.Run.Checksum, Moved.Run.Checksum);
  // Migration can only lose freeing opportunities, never gain them.
  EXPECT_LE(Moved.Stats.tcfreeFreedBytes(), Pinned.Stats.tcfreeFreedBytes());
  EXPECT_GE(Moved.Stats.TcfreeGiveUps, Pinned.Stats.TcfreeGiveUps);
}
