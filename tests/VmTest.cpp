//===- tests/VmTest.cpp - Bytecode VM tests -------------------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/vm: the AST-to-bytecode compiler (chunk shape, pool
/// dedup, disassembly), the dispatch loop (arithmetic, calls, defer/panic
/// unwinding, runtime faults), the engine-equivalence law (bytecode VM and
/// tree-walker produce bit-identical observables, enforced here on hand
/// written programs and by the fuzz differ's 'vm' leg on generated ones),
/// precise rooting of the operand stack (GC forced at every single opcode
/// must not change behavior), module sharing across mutator threads, and
/// the int64 boundary arithmetic the paper's Go semantics require.
///
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "fuzz/Differ.h"
#include "vm/Compiler.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gofree;
using namespace gofree::compiler;

namespace {

Compilation compiled(const std::string &Src,
                     CompileMode Mode = CompileMode::Go) {
  CompileOptions CO;
  CO.Mode = Mode;
  Compilation C = compile(Src, CO);
  EXPECT_TRUE(C.ok()) << C.Errors;
  return C;
}

ExecOutcome runEngine(const std::string &Src, ExecEngine Engine,
                      CompileMode Mode = CompileMode::GoFree,
                      const std::vector<int64_t> &Args = {},
                      ExecOptions EO = {}) {
  Compilation C = compiled(Src, Mode);
  if (!C.ok())
    return {};
  EO.Engine = Engine;
  return execute(C, "main", Args, EO);
}

/// The engine law: VM and tree-walker must agree on every observable --
/// checksum, sink count, panic flag/value and fault string -- in both
/// compilation modes. Returns the VM outcome for further checks.
ExecOutcome expectEngineEquivalence(const std::string &Src,
                                    const std::vector<int64_t> &Args = {}) {
  ExecOutcome VmO;
  for (CompileMode Mode : {CompileMode::Go, CompileMode::GoFree}) {
    ExecOutcome A = runEngine(Src, ExecEngine::Ast, Mode, Args);
    ExecOutcome V = runEngine(Src, ExecEngine::Vm, Mode, Args);
    EXPECT_EQ(V.Run.Checksum, A.Run.Checksum) << "engines diverged";
    EXPECT_EQ(V.Run.SinkCount, A.Run.SinkCount);
    EXPECT_EQ(V.Run.Panicked, A.Run.Panicked);
    EXPECT_EQ(V.Run.PanicValue, A.Run.PanicValue);
    EXPECT_EQ(V.Run.Error, A.Run.Error);
    if (Mode == CompileMode::GoFree)
      VmO = V;
  }
  return VmO;
}

uint64_t vmChecksum(const std::string &Src,
                    const std::vector<int64_t> &Args = {}) {
  ExecOutcome O = runEngine(Src, ExecEngine::Vm, CompileMode::GoFree, Args);
  EXPECT_TRUE(O.Run.ok()) << O.Run.Error;
  return O.Run.Checksum;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bytecode compiler: chunk shape, pools, disassembly
//===----------------------------------------------------------------------===//

TEST(VmCompilerTest, EveryFunctionGetsAChunk) {
  Compilation C = compiled("func helper(x int) int { return x + 1 }\n"
                           "func twice(x int) int { return helper(helper(x)) }\n"
                           "func main() { sink(twice(3)) }\n");
  vm::Module M = vm::compileProgram(*C.Prog);
  EXPECT_EQ(M.Chunks.size(), 3u);
  for (const minigo::FuncDecl *Fn : C.Prog->Funcs) {
    const vm::Chunk *Ch = M.chunkFor(Fn);
    ASSERT_NE(Ch, nullptr) << Fn->Name;
    EXPECT_EQ(Ch->Fn, Fn);
    EXPECT_FALSE(Ch->Code.empty()) << Fn->Name;
  }
}

TEST(VmCompilerTest, ConstantAndCalleePoolsDedup) {
  Compilation C = compiled("func f(x int) int { return x }\n"
                           "func main() {\n"
                           "  sink(f(42) + f(42) + f(42) + 42)\n"
                           "}\n");
  vm::Module M = vm::compileProgram(*C.Prog);
  // 42 appears four times in the source but once in the pool.
  EXPECT_EQ(std::count(M.Ints.begin(), M.Ints.end(), 42), 1);
  // f is called three times but pooled once.
  int FCount = 0;
  for (const minigo::FuncDecl *Fn : M.Funcs)
    FCount += (Fn && Fn->Name == "f");
  EXPECT_EQ(FCount, 1);
}

TEST(VmCompilerTest, DisassemblyListsFunctionsAndOpcodes) {
  Compilation C = compiled("func add(a int, b int) int { return a + b }\n"
                           "func main() { sink(add(2, 3)) }\n");
  vm::Module M = vm::compileProgram(*C.Prog);
  std::string Listing = vm::disassemble(M);
  EXPECT_NE(Listing.find("add:"), std::string::npos);
  EXPECT_NE(Listing.find("main:"), std::string::npos);
  EXPECT_NE(Listing.find("add"), std::string::npos);
  EXPECT_NE(Listing.find("call"), std::string::npos);
  EXPECT_NE(Listing.find("sink"), std::string::npos);
  EXPECT_NE(Listing.find("; add"), std::string::npos); // pool annotation
}

TEST(VmCompilerTest, ShortCircuitCompilesToJumpsNotCalls) {
  // && / || become peek-jumps over the right operand; there is no
  // short-circuit "operator" at runtime.
  Compilation C = compiled("func main() {\n"
                           "  a := true\n"
                           "  b := false\n"
                           "  if a && b { sink(1) }\n"
                           "  if a || b { sink(2) }\n"
                           "}\n");
  vm::Module M = vm::compileProgram(*C.Prog);
  std::string Listing = vm::disassemble(M);
  EXPECT_NE(Listing.find("jfalse.peek"), std::string::npos);
  EXPECT_NE(Listing.find("jtrue.peek"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dispatch: arithmetic, control flow, calls
//===----------------------------------------------------------------------===//

TEST(VmTest, ArithmeticAndSink) {
  uint64_t A = vmChecksum("func main() {\n"
                          "  sink(2 + 3*4)\n"
                          "  sink(10 / 3)\n"
                          "  sink(10 % 3)\n"
                          "  sink(-5)\n"
                          "}\n");
  uint64_t B = vmChecksum("func main() {\n"
                          "  sink(14)\n  sink(3)\n  sink(1)\n  sink(-5)\n"
                          "}\n");
  EXPECT_EQ(A, B);
}

TEST(VmTest, ShortCircuitDoesNotEvaluateRightArm) {
  ExecOutcome O = runEngine("func boom(x int) bool {\n"
                            "  sink(1 / x)\n"
                            "  return true\n"
                            "}\n"
                            "func main() {\n"
                            "  z := 0\n"
                            "  if false && boom(z) { sink(1) }\n"
                            "  if true || boom(z) { sink(2) }\n"
                            "}\n",
                            ExecEngine::Vm);
  EXPECT_TRUE(O.Run.ok()) << O.Run.Error;
  EXPECT_EQ(O.Run.SinkCount, 1u);
}

TEST(VmTest, LoopsBreakContinue) {
  expectEngineEquivalence("func main() {\n"
                          "  total := 0\n"
                          "  for i := 0; i < 100; i = i + 1 {\n"
                          "    if i % 3 == 0 { continue }\n"
                          "    if i > 40 { break }\n"
                          "    total = total + i\n"
                          "  }\n"
                          "  sink(total)\n"
                          "}\n");
}

TEST(VmTest, RecursionMatchesTreeWalker) {
  expectEngineEquivalence("func fib(n int) int {\n"
                          "  if n < 2 { return n }\n"
                          "  return fib(n-1) + fib(n-2)\n"
                          "}\n"
                          "func main(n int) { sink(fib(n)) }\n",
                          {15});
}

TEST(VmTest, MultiValueReturnsAndAssignment) {
  expectEngineEquivalence("func pair(x int) (int, int) {\n"
                          "  return x, x * 2\n"
                          "}\n"
                          "func forward(x int) (int, int) {\n"
                          "  return pair(x + 1)\n"
                          "}\n"
                          "func main() {\n"
                          "  a, b := pair(10)\n"
                          "  sink(a + b)\n"
                          "  c, _ := forward(5)\n"
                          "  sink(c)\n"
                          "  _, d := forward(7)\n"
                          "  sink(d)\n"
                          "  a, b = b, a\n"
                          "  sink(a - b)\n"
                          "}\n");
}

//===----------------------------------------------------------------------===//
// Containers, structs, pointers
//===----------------------------------------------------------------------===//

TEST(VmTest, SlicesMapsStructsMatchTreeWalker) {
  expectEngineEquivalence(
      "type Pt struct { x int\n y int\n }\n"
      "func main() {\n"
      "  s := make([]int, 0)\n"
      "  for i := 0; i < 50; i = i + 1 { s = append(s, i*i) }\n"
      "  sub := s[10:20]\n"
      "  sink(sub[0] + len(sub) + cap(s))\n"
      "  m := make(map[int]Pt)\n"
      "  m[1] = Pt{x: 3, y: 4}\n"
      "  m[2] = Pt{x: 5, y: 12}\n"
      "  delete(m, 1)\n"
      "  sink(m[2].x + m[999].y + len(m))\n"
      "  p := &Pt{x: 7, y: 8}\n"
      "  p.x = p.x + m[2].y\n"
      "  sink(p.x)\n"
      "  dst := make([]int, 5)\n"
      "  sink(copy(dst, s))\n"
      "  sink(dst[4])\n"
      "}\n");
}

TEST(VmTest, EqualityClassesMatchTreeWalker) {
  expectEngineEquivalence("type Pt struct { x int\n }\n"
                          "func main() {\n"
                          "  var s []int\n"
                          "  if s == nil { sink(1) }\n"
                          "  s = make([]int, 1)\n"
                          "  if s != nil { sink(2) }\n"
                          "  var m map[int]int\n"
                          "  if m == nil { sink(3) }\n"
                          "  var p *Pt\n"
                          "  if p == nil { sink(4) }\n"
                          "  p = &Pt{x: 1}\n"
                          "  q := p\n"
                          "  if p == q { sink(5) }\n"
                          "}\n");
}

//===----------------------------------------------------------------------===//
// Defer, panic, runtime faults
//===----------------------------------------------------------------------===//

TEST(VmTest, DeferRunsInLifoOrder) {
  expectEngineEquivalence("func note(x int) { sink(x) }\n"
                          "func main() {\n"
                          "  for i := 0; i < 3; i = i + 1 {\n"
                          "    defer note(i)\n"
                          "  }\n"
                          "  sink(100)\n"
                          "}\n");
}

TEST(VmTest, DefersRunDuringPanicUnwind) {
  ExecOutcome O = expectEngineEquivalence("func note(x int) { sink(x) }\n"
                                          "func boom() {\n"
                                          "  defer note(1)\n"
                                          "  panic(42)\n"
                                          "}\n"
                                          "func main() {\n"
                                          "  defer note(2)\n"
                                          "  boom()\n"
                                          "  sink(999)\n" // Never reached.
                                          "}\n");
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.PanicValue, 42);
  EXPECT_EQ(O.Run.SinkCount, 2u); // Both defers, not the 999.
}

TEST(VmTest, PanicInsideDeferredCallWins) {
  ExecOutcome O = expectEngineEquivalence("func boom(x int) { panic(x) }\n"
                                          "func main() {\n"
                                          "  defer boom(7)\n"
                                          "  sink(1)\n"
                                          "}\n");
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.PanicValue, 7);
}

TEST(VmTest, DivideByZeroFaults) {
  ExecOutcome O = expectEngineEquivalence("func main(x int) {\n"
                                          "  sink(1 / (x - x))\n"
                                          "}\n",
                                          {3});
  EXPECT_EQ(O.Run.Error, "integer divide by zero");
}

TEST(VmTest, NilDereferenceFaults) {
  ExecOutcome O = expectEngineEquivalence("type Pt struct { x int\n }\n"
                                          "func main() {\n"
                                          "  var p *Pt\n"
                                          "  sink(p.x)\n"
                                          "}\n");
  EXPECT_FALSE(O.Run.Error.empty());
}

TEST(VmTest, NilMapAssignmentFaults) {
  ExecOutcome O = expectEngineEquivalence("func main() {\n"
                                          "  var m map[int]int\n"
                                          "  m[1] = 2\n"
                                          "}\n");
  EXPECT_FALSE(O.Run.Error.empty());
}

TEST(VmTest, SliceIndexOutOfRangeFaults) {
  ExecOutcome O = expectEngineEquivalence("func main(n int) {\n"
                                          "  s := make([]int, 3)\n"
                                          "  sink(s[n])\n"
                                          "}\n",
                                          {5});
  EXPECT_FALSE(O.Run.Error.empty());
}

TEST(VmTest, FaultSkipsRemainingDefers) {
  // A runtime fault (unlike a panic) aborts without running defers; the
  // engines must agree on that too.
  ExecOutcome O = expectEngineEquivalence("func note(x int) { sink(x) }\n"
                                          "func main(x int) {\n"
                                          "  defer note(1)\n"
                                          "  sink(1 / (x - x))\n"
                                          "}\n",
                                          {3});
  EXPECT_FALSE(O.Run.Error.empty());
}

//===----------------------------------------------------------------------===//
// Fuel and the step budget
//===----------------------------------------------------------------------===//

TEST(VmTest, StepBudgetStopsRunawayLoop) {
  ExecOptions EO;
  EO.Interp.MaxSteps = 10'000;
  ExecOutcome O = runEngine("func main() {\n"
                            "  for i := 0; i >= 0; i = i + 1 { }\n"
                            "}\n",
                            ExecEngine::Vm, CompileMode::Go, {}, EO);
  EXPECT_TRUE(O.Run.OutOfFuel);
}

//===----------------------------------------------------------------------===//
// Precise rooting: GC forced at every opcode
//===----------------------------------------------------------------------===//

TEST(VmTest, GcAtEveryOpcodeDoesNotChangeBehavior) {
  // The torture knob: a full stop-the-world collection between every two
  // opcodes, with heap verification on. Every operand-stack value -- raw
  // lvalue addresses included -- must be a root, or the collection frees
  // an object mid-expression and the checksum (or the verifier) breaks.
  const char *Src = "type Node struct { v int\n next *Node\n }\n"
                    "func build(n int) *Node {\n"
                    "  var head *Node\n"
                    "  for i := 0; i < n; i = i + 1 {\n"
                    "    head = &Node{v: i, next: head}\n"
                    "  }\n"
                    "  return head\n"
                    "}\n"
                    "func main() {\n"
                    "  h := build(8)\n"
                    "  h.next.v = h.next.v + 100\n"
                    "  total := 0\n"
                    "  for p := h; p != nil; p = p.next {\n"
                    "    total = total + p.v\n"
                    "  }\n"
                    "  s := make([]int, 4)\n"
                    "  s[1] = total\n"
                    "  s = append(s, total)\n"
                    "  m := make(map[int]int)\n"
                    "  m[1] = s[1]\n"
                    "  sink(s[4] + m[1] + len(s))\n"
                    "}\n";
  ExecOutcome Plain = runEngine(Src, ExecEngine::Vm);
  ASSERT_TRUE(Plain.Run.ok()) << Plain.Run.Error;

  ExecOptions EO;
  EO.Interp.GcEveryNSteps = 1;
  EO.Heap.Gc.Verify = true;
  EO.Heap.Gc.MinHeapTrigger = 0;
  ExecOutcome Tortured =
      runEngine(Src, ExecEngine::Vm, CompileMode::GoFree, {}, EO);
  EXPECT_TRUE(Tortured.ok()) << Tortured.Error;
  EXPECT_EQ(Tortured.Run.Checksum, Plain.Run.Checksum);
  EXPECT_EQ(Tortured.Run.SinkCount, Plain.Run.SinkCount);
}

TEST(VmTest, GcTortureDuringPanicUnwind) {
  // Deferred arguments and pending return values must stay rooted while
  // defers run during an unwind.
  const char *Src = "type Pt struct { x int\n }\n"
                    "func note(p *Pt) { sink(p.x) }\n"
                    "func boom() *Pt {\n"
                    "  defer note(&Pt{x: 5})\n"
                    "  panic(9)\n"
                    "}\n"
                    "func main() {\n"
                    "  defer note(&Pt{x: 6})\n"
                    "  boom()\n"
                    "}\n";
  ExecOptions EO;
  EO.Interp.GcEveryNSteps = 1;
  EO.Heap.Gc.Verify = true;
  EO.Heap.Gc.MinHeapTrigger = 0;
  ExecOutcome O = runEngine(Src, ExecEngine::Vm, CompileMode::GoFree, {}, EO);
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.PanicValue, 9);
  EXPECT_EQ(O.Run.SinkCount, 2u);
  ExecOutcome Plain = runEngine(Src, ExecEngine::Vm);
  EXPECT_EQ(O.Run.Checksum, Plain.Run.Checksum);
}

//===----------------------------------------------------------------------===//
// Module sharing across mutator threads
//===----------------------------------------------------------------------===//

TEST(VmTest, SharedModuleAcrossWorkers) {
  const char *Src = "func main(n int) {\n"
                    "  s := make([]int, 0)\n"
                    "  for i := 0; i < n; i = i + 1 { s = append(s, i) }\n"
                    "  total := 0\n"
                    "  for i := 0; i < len(s); i = i + 1 {\n"
                    "    total = total + s[i]\n"
                    "  }\n"
                    "  sink(total)\n"
                    "}\n";
  ExecOutcome Single = runEngine(Src, ExecEngine::Vm, CompileMode::GoFree,
                                 {64});
  ASSERT_TRUE(Single.Run.ok()) << Single.Run.Error;
  ExecOptions EO;
  EO.NumThreads = 3;
  ExecOutcome Mt =
      runEngine(Src, ExecEngine::Vm, CompileMode::GoFree, {64}, EO);
  EXPECT_TRUE(Mt.Run.ok()) << Mt.Run.Error;
  EXPECT_EQ(Mt.Run.Checksum, Single.Run.Checksum * 3);
  EXPECT_EQ(Mt.Run.SinkCount, Single.Run.SinkCount * 3);
}

//===----------------------------------------------------------------------===//
// Int64 boundary arithmetic (Go wrap semantics), both engines
//===----------------------------------------------------------------------===//

TEST(VmArithTest, MinInt64DivAndModByMinusOne) {
  // Go: INT64_MIN / -1 == INT64_MIN (wraps), INT64_MIN % -1 == 0. In C++
  // both are UB; the runtime must guard them explicitly.
  ExecOutcome O = expectEngineEquivalence(
      "func main() {\n"
      "  min := -9223372036854775807 - 1\n"
      "  m1 := -1\n"
      "  sink(min / m1)\n"
      "  sink(min % m1)\n"
      "}\n");
  ASSERT_TRUE(O.Run.ok()) << O.Run.Error;
  uint64_t Expected = vmChecksum("func main() {\n"
                                 "  sink(-9223372036854775807 - 1)\n"
                                 "  sink(0)\n"
                                 "}\n");
  EXPECT_EQ(O.Run.Checksum, Expected);
}

TEST(VmArithTest, AddSubMulNegWrapAround) {
  ExecOutcome O = expectEngineEquivalence(
      "func main() {\n"
      "  max := 9223372036854775807\n"
      "  min := -max - 1\n"
      "  sink(max + 1)\n"  // wraps to min
      "  sink(min - 1)\n"  // wraps to max
      "  sink(max * 2)\n"  // wraps to -2
      "  sink(min * -1)\n" // wraps to min
      "  sink(-min)\n"     // wraps to min
      "}\n");
  ASSERT_TRUE(O.Run.ok()) << O.Run.Error;
  uint64_t Expected = vmChecksum("func main() {\n"
                                 "  max := 9223372036854775807\n"
                                 "  min := -max - 1\n"
                                 "  sink(min)\n  sink(max)\n  sink(-2)\n"
                                 "  sink(min)\n  sink(min)\n"
                                 "}\n");
  EXPECT_EQ(O.Run.Checksum, Expected);
}

//===----------------------------------------------------------------------===//
// The differ's engine leg on arithmetic-boundary programs
//===----------------------------------------------------------------------===//

namespace {

/// Runs one boundary program through every standard differ leg (go oracle
/// on the tree-walker, vm engine law, gofree on both engines, poisoning,
/// gcoff, migration, multi-threaded, parallel GC) and expects agreement.
void expectDiffsClean(const std::string &Src) {
  fuzz::DiffOptions D;
  D.Args = {};
  D.MtThreads = 2;
  fuzz::DiffResult R = fuzz::diffProgram(Src, D);
  EXPECT_EQ(R.Status, fuzz::DiffStatus::Ok) << R.Failure;
}

} // namespace

TEST(VmDifferTest, StandardLegsIncludeBothEngines) {
  fuzz::DiffOptions D;
  std::vector<fuzz::LegResult> Legs = fuzz::standardLegs(D);
  ASSERT_FALSE(Legs.empty());
  // The oracle stays the tree-walker, explicitly pinned.
  EXPECT_EQ(Legs.front().Name, "go");
  EXPECT_NE(std::find(Legs.front().Flags.begin(), Legs.front().Flags.end(),
                      "--engine=ast"),
            Legs.front().Flags.end());
  auto HasLeg = [&](const char *Name) {
    for (const fuzz::LegResult &L : Legs)
      if (L.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(HasLeg("vm"));
  EXPECT_TRUE(HasLeg("gofree-ast"));
}

TEST(VmDifferTest, ArithmeticBoundariesDiffClean) {
  expectDiffsClean("func main() {\n"
                   "  min := -9223372036854775807 - 1\n"
                   "  m1 := -1\n"
                   "  sink(min / m1)\n"
                   "  sink(min % m1)\n"
                   "  sink(min * -1)\n"
                   "  sink(-min)\n"
                   "}\n");
  expectDiffsClean("func main() {\n"
                   "  x := 9223372036854775807\n"
                   "  for i := 0; i < 4; i = i + 1 {\n"
                   "    x = x * 31 + 7\n"
                   "    sink(x)\n"
                   "  }\n"
                   "}\n");
}

TEST(VmDifferTest, DivideByZeroDiffsClean) {
  // Every leg must agree on the fault string, engines included.
  expectDiffsClean("func main() {\n"
                   "  z := 0\n"
                   "  sink(5 / z)\n"
                   "}\n");
}
