//===- tests/ModelTest.cpp - Reference-model property tests ---------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Differential testing of the runtime data structures against reference
// models: the map runtime against std::unordered_map under long random
// operation sequences (including growth, deletion and tcfree pressure),
// and the page heap's free-run bookkeeping under random span churn.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/MapRt.h"
#include "runtime/SliceRt.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

using namespace gofree;
using namespace gofree::rt;

namespace {

const TypeDesc *hmapDesc() {
  static const TypeDesc D{
      "hmap", HMapHeaderSize, false, nullptr, {{HMapBucketsOff, SlotKind::Raw}}};
  return &D;
}

MapCtx intMapCtx(Heap &H) {
  static const TypeDesc Entry{"entry", 24, false, nullptr, {}};
  static const TypeDesc Buckets{"buckets", 8, true, &Entry, {}};
  MapCtx Ctx;
  Ctx.H = &H;
  Ctx.BucketArrayDesc = &Buckets;
  Ctx.ValueSize = 8;
  return Ctx;
}

} // namespace

class MapModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapModelTest, MatchesUnorderedMapUnderRandomOps) {
  Heap H;
  MapCtx Ctx = intMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  std::unordered_map<int64_t, int64_t> Model;
  Rng R(GetParam() * 7919 + 3);

  for (int Op = 0; Op < 20000; ++Op) {
    int64_t Key = R.range(-200, 200); // Narrow space forces collisions.
    switch (R.below(4)) {
    case 0:
    case 1: { // Insert/update.
      int64_t Val = (int64_t)R.next();
      mapAssign(Ctx, M, Key, &Val);
      Model[Key] = Val;
      break;
    }
    case 2: { // Lookup.
      int64_t Got = 0;
      bool Found = mapLookup(M, Key, &Got, 8);
      auto It = Model.find(Key);
      ASSERT_EQ(Found, It != Model.end()) << "op " << Op << " key " << Key;
      if (Found) {
        ASSERT_EQ(Got, It->second) << "op " << Op << " key " << Key;
      }
      break;
    }
    case 3: { // Delete.
      bool Did = mapDelete(M, Key);
      ASSERT_EQ(Did, Model.erase(Key) > 0) << "op " << Op << " key " << Key;
      break;
    }
    }
    ASSERT_EQ(mapLen(M), (int64_t)Model.size()) << "op " << Op;
  }
  // Final full sweep: every model entry present with the right value.
  for (const auto &[K, V] : Model) {
    int64_t Got = 0;
    ASSERT_TRUE(mapLookup(M, K, &Got, 8)) << K;
    ASSERT_EQ(Got, V) << K;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapModelTest,
                         ::testing::Range<uint64_t>(1, 6));

TEST(MapModelTest, SurvivesGrowthWaves) {
  // Insert in waves with deletes between them: the table must grow through
  // many doublings while GrowMapAndFreeOld churns the heap underneath.
  Heap H;
  MapCtx Ctx = intMapCtx(H);
  uintptr_t M = mapMakeHeap(Ctx, hmapDesc(), 0);
  std::unordered_map<int64_t, int64_t> Model;
  for (int Wave = 1; Wave <= 5; ++Wave) {
    for (int64_t K = 0; K < Wave * 4000; ++K) {
      int64_t V = K * Wave;
      mapAssign(Ctx, M, K, &V);
      Model[K] = V;
    }
    for (int64_t K = 0; K < Wave * 1000; ++K) {
      mapDelete(M, K * 3);
      Model.erase(K * 3);
    }
    ASSERT_EQ(mapLen(M), (int64_t)Model.size()) << "wave " << Wave;
  }
  EXPECT_GT(H.stats().FreedCountBySource[(int)FreeSource::MapGrowOld].load(),
            5u);
  for (const auto &[K, V] : Model) {
    int64_t Got;
    ASSERT_TRUE(mapLookup(M, K, &Got, 8));
    ASSERT_EQ(Got, V);
  }
}

//===----------------------------------------------------------------------===//
// Allocator churn model: random alloc/tcfree/GC with a live-set oracle
//===----------------------------------------------------------------------===//

namespace {

class OracleRoots : public RootScanner {
public:
  std::unordered_map<uintptr_t, uint64_t> Live; ///< addr -> expected word
  void scanRoots(Heap &H) override {
    for (const auto &[Addr, Word] : Live)
      H.gcMarkAddr(Addr);
  }
};

} // namespace

class ChurnModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnModelTest, LiveObjectsKeepTheirContents) {
  HeapOptions O;
  O.Gc.MinHeapTrigger = 64 * 1024;
  Heap H(O);
  OracleRoots Roots;
  H.setRootScanner(&Roots);
  Rng R(GetParam() * 104729 + 17);

  std::vector<uintptr_t> Order;
  for (int Op = 0; Op < 30000; ++Op) {
    uint64_t Dice = R.below(100);
    if (Dice < 60 || Roots.Live.empty()) {
      size_t Bytes = 16 + R.below(400) * 8;
      uintptr_t A = H.allocate(Bytes, scalarDesc(), AllocCat::Other, 0);
      uint64_t Word = R.next() | 1;
      std::memcpy(reinterpret_cast<void *>(A), &Word, 8);
      Roots.Live[A] = Word;
      Order.push_back(A);
    } else if (Dice < 85) {
      // Explicitly free a random live object (drop it from the oracle
      // first: tcfree is only legal on dead objects).
      size_t Idx = R.below(Order.size());
      uintptr_t A = Order[Idx];
      Order.erase(Order.begin() + (ptrdiff_t)Idx);
      if (Roots.Live.erase(A))
        H.tcfreeObject(A, 0, FreeSource::TcfreeObject);
    } else if (Dice < 95) {
      // Let the GC take one instead.
      size_t Idx = R.below(Order.size());
      uintptr_t A = Order[Idx];
      Order.erase(Order.begin() + (ptrdiff_t)Idx);
      Roots.Live.erase(A);
    } else {
      H.runGc();
    }
    // Periodically validate every live object's contents.
    if (Op % 5000 == 4999) {
      for (const auto &[Addr, Word] : Roots.Live) {
        uint64_t Got;
        std::memcpy(&Got, reinterpret_cast<void *>(Addr), 8);
        ASSERT_EQ(Got, Word) << "op " << Op;
        ASSERT_TRUE(H.isLiveObject(Addr));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnModelTest,
                         ::testing::Range<uint64_t>(1, 5));

//===----------------------------------------------------------------------===//
// Slice growth model
//===----------------------------------------------------------------------===//

TEST(SliceModelTest, GrowthMatchesVectorModel) {
  Heap H;
  static const TypeDesc IntArray{"[]int", 8, true, scalarDesc(), {}};
  SliceRtOptions Opts;
  Rng R(99);
  for (int Round = 0; Round < 20; ++Round) {
    SliceHeader Hdr{0, 0, 0};
    std::vector<uint64_t> Model;
    int N = 1 + (int)R.below(700);
    for (int I = 0; I < N; ++I) {
      sliceGrowForAppend(H, Hdr, &IntArray, 8, 0, Opts);
      uint64_t V = R.next();
      std::memcpy(reinterpret_cast<void *>(Hdr.Data + (size_t)Hdr.Len * 8),
                  &V, 8);
      ++Hdr.Len;
      Model.push_back(V);
      ASSERT_LE(Hdr.Len, Hdr.Cap);
    }
    ASSERT_EQ((size_t)Hdr.Len, Model.size());
    for (size_t I = 0; I < Model.size(); ++I) {
      uint64_t Got;
      std::memcpy(&Got, reinterpret_cast<void *>(Hdr.Data + I * 8), 8);
      ASSERT_EQ(Got, Model[I]) << "round " << Round << " index " << I;
    }
    tcfreeSlice(H, Hdr, 0);
  }
}
