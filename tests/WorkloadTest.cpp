//===- tests/WorkloadTest.cpp - Subject workload tests --------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Verifies that every synthetic subject program (table 6 stand-ins)
// compiles, runs identically under Go and GoFree, and exhibits the
// allocation profile the paper reports for its counterpart (tables 7-9).
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;
using namespace gofree::workloads;

namespace {

struct Pair {
  ExecOutcome Go;
  ExecOutcome Free;
};

Pair runBoth(const Workload &W, const std::vector<int64_t> &Args) {
  Pair P;
  Compilation CGo = compile(W.Source, CompileOptions{CompileMode::Go, escape::FreeTargets::SlicesAndMaps, {}, {}});
  Compilation CFree = compile(W.Source, CompileOptions{CompileMode::GoFree, escape::FreeTargets::SlicesAndMaps, {}, {}});
  EXPECT_TRUE(CGo.ok()) << W.Name << ": " << CGo.Errors;
  EXPECT_TRUE(CFree.ok()) << W.Name << ": " << CFree.Errors;
  if (!CGo.ok() || !CFree.ok())
    return P;
  P.Go = execute(CGo, W.Entry, Args);
  P.Free = execute(CFree, W.Entry, Args);
  EXPECT_TRUE(P.Go.Run.ok()) << W.Name << ": " << P.Go.Run.Error;
  EXPECT_TRUE(P.Free.Run.ok()) << W.Name << ": " << P.Free.Run.Error;
  return P;
}

double sourceShare(const rt::StatsSnapshot &S, rt::FreeSource Src) {
  uint64_t Total = S.tcfreeFreedBytes();
  return Total == 0
             ? 0.0
             : (double)S.FreedBytesBySource[(int)Src] / (double)Total;
}

} // namespace

class SubjectWorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SubjectWorkloadTest, GoAndGoFreeAgree) {
  const Workload &W = subjectWorkloads()[GetParam()];
  Pair P = runBoth(W, W.SmallArgs);
  EXPECT_EQ(P.Go.Run.Checksum, P.Free.Run.Checksum)
      << W.Name << ": GoFree changed observable behavior";
  EXPECT_EQ(P.Go.Run.SinkCount, P.Free.Run.SinkCount);
  // Go mode never calls tcfree.
  EXPECT_EQ(P.Go.Stats.tcfreeFreedBytes(), 0u);
}

TEST_P(SubjectWorkloadTest, GoFreeReclaimsMemory) {
  const Workload &W = subjectWorkloads()[GetParam()];
  Pair P = runBoth(W, W.SmallArgs);
  EXPECT_GT(P.Free.Stats.freeRatio(), 0.02)
      << W.Name << " must reclaim a visible share of its allocation";
  EXPECT_LE(P.Free.Stats.PeakLive, P.Go.Stats.PeakLive)
      << W.Name << " must not grow the live heap";
}

TEST_P(SubjectWorkloadTest, RobustUnderPoisoningTcfree) {
  // Section 6.8: a mock tcfree that flips the bits of "freed" memory must
  // not change the program's observable behavior if the analysis is sound.
  const Workload &W = subjectWorkloads()[GetParam()];
  Compilation C = compile(W.Source, CompileOptions{CompileMode::GoFree, escape::FreeTargets::SlicesAndMaps, {}, {}});
  ASSERT_TRUE(C.ok());
  ExecOutcome Clean = execute(C, W.Entry, W.SmallArgs);
  ExecOptions Poison;
  Poison.Heap.Mock = rt::MockTcfree::Flip;
  ExecOutcome Mock = execute(C, W.Entry, W.SmallArgs, Poison);
  ASSERT_TRUE(Mock.Run.ok()) << W.Name << ": " << Mock.Run.Error;
  EXPECT_EQ(Clean.Run.Checksum, Mock.Run.Checksum)
      << W.Name << ": a live object was explicitly freed";
  EXPECT_GT(Mock.Stats.AllocedBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectWorkloadTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return subjectWorkloads()[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// Per-project profile shapes (tables 7 and 9)
//===----------------------------------------------------------------------===//

TEST(WorkloadProfileTest, BadgerAndJsonAreGrowDominated) {
  for (const char *Name : {"badger", "gojson"}) {
    const Workload &W = subjectWorkload(Name);
    Pair P = runBoth(W, W.SmallArgs);
    EXPECT_GT(sourceShare(P.Free.Stats, rt::FreeSource::MapGrowOld), 0.9)
        << Name << " must reclaim almost everything from map growth";
  }
}

TEST(WorkloadProfileTest, CompilerAndHugoAreSliceDominated) {
  for (const char *Name : {"gocompiler", "hugo"}) {
    const Workload &W = subjectWorkload(Name);
    Pair P = runBoth(W, W.Args); // Full size: small runs under-grow maps.
    double Slice = sourceShare(P.Free.Stats, rt::FreeSource::TcfreeSlice);
    double Map = sourceShare(P.Free.Stats, rt::FreeSource::TcfreeMap);
    double Grow = sourceShare(P.Free.Stats, rt::FreeSource::MapGrowOld);
    EXPECT_GT(Slice, Map) << Name;
    EXPECT_GT(Slice, Grow) << Name;
  }
}

TEST(WorkloadProfileTest, ScheckSplitsBetweenMapAndGrow) {
  const Workload &W = subjectWorkload("scheck");
  Pair P = runBoth(W, W.Args);
  double Slice = sourceShare(P.Free.Stats, rt::FreeSource::TcfreeSlice);
  double Map = sourceShare(P.Free.Stats, rt::FreeSource::TcfreeMap);
  double Grow = sourceShare(P.Free.Stats, rt::FreeSource::MapGrowOld);
  EXPECT_LT(Slice, 0.1);
  EXPECT_GT(Map, 0.3);
  EXPECT_GT(Grow, 0.3);
}

TEST(WorkloadProfileTest, SlayoutIsAlmostAllGrow) {
  const Workload &W = subjectWorkload("slayout");
  Pair P = runBoth(W, W.Args);
  EXPECT_GT(sourceShare(P.Free.Stats, rt::FreeSource::MapGrowOld), 0.85);
}

//===----------------------------------------------------------------------===//
// Figure 10 microbenchmark behavior
//===----------------------------------------------------------------------===//

TEST(MicroMapTest, FreesNearlyEverything) {
  const Workload &W = microMapWorkload();
  Compilation C = compile(W.Source, CompileOptions{CompileMode::GoFree, escape::FreeTargets::SlicesAndMaps, {}, {}});
  ASSERT_TRUE(C.ok()) << C.Errors;
  ExecOutcome O = execute(C, W.Entry, {2000, 64});
  ASSERT_TRUE(O.Run.ok()) << O.Run.Error;
  EXPECT_GT(O.Stats.freeRatio(), 0.9)
      << "the per-round temp map is the only allocation";
}

TEST(MicroMapTest, BiggerCMeansBiggerFreedObjects) {
  const Workload &W = microMapWorkload();
  Compilation C = compile(W.Source, CompileOptions{CompileMode::GoFree, escape::FreeTargets::SlicesAndMaps, {}, {}});
  ASSERT_TRUE(C.ok());
  auto MeanFreedObject = [&](int64_t Rounds, int64_t CParam) {
    ExecOutcome O = execute(C, W.Entry, {Rounds, CParam});
    EXPECT_TRUE(O.Run.ok());
    uint64_t Bytes = 0, Count = 0;
    for (int I = 0; I < rt::NumFreeSources; ++I) {
      Bytes += O.Stats.FreedBytesBySource[I];
      Count += O.Stats.FreedCountBySource[I];
    }
    return Count == 0 ? 0.0 : (double)Bytes / (double)Count;
  };
  double SmallC = MeanFreedObject(2000, 8);
  double LargeC = MeanFreedObject(200, 800);
  EXPECT_GT(LargeC, 10 * SmallC);
}
