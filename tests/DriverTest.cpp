//===- tests/DriverTest.cpp - Shared pipeline flag grammar tests ----------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for compiler::driver: every flag of the shared grammar round-trips
/// into PipelineOptions, invalid values are rejected with a diagnostic,
/// non-pipeline flags stay Unknown (so front ends can layer their own), and
/// compileAndRun / outcomeJson flatten outcomes the way the CLI, the bench
/// binaries, and the fuzz legs rely on. The round-trip table is
/// cross-checked against usageText() so the grammar and its docs can't
/// drift apart.
///
//===----------------------------------------------------------------------===//

#include "compiler/Driver.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <sstream>

using namespace gofree;
using namespace gofree::compiler;
using namespace gofree::compiler::driver;

namespace {

PipelineOptions parsedOk(const std::string &Flag) {
  PipelineOptions P;
  std::string Err;
  EXPECT_EQ(parseFlag(Flag, P, &Err), FlagParse::Ok) << Flag << ": " << Err;
  return P;
}

std::string invalidErr(const std::string &Flag) {
  PipelineOptions P;
  std::string Err;
  EXPECT_EQ(parseFlag(Flag, P, &Err), FlagParse::Invalid) << Flag;
  EXPECT_FALSE(Err.empty()) << Flag << " gave no diagnostic";
  return Err;
}

/// The flag names this suite exercises; compared against usageText() so a
/// new flag without a round-trip test fails CoversEveryUsageLine.
const std::set<std::string> &testedFlags() {
  static const std::set<std::string> Names = {
      "mode",       "engine",    "entry",      "targets",
      "gc",         "mock",      "num-threads", "num-caches",
      "max-steps",  "migration-period",
  };
  return Names;
}

} // namespace

//===----------------------------------------------------------------------===//
// Flag round-trips
//===----------------------------------------------------------------------===//

TEST(DriverFlagTest, ModeRoundTrips) {
  EXPECT_EQ(parsedOk("--mode=go").Compile.Mode, CompileMode::Go);
  EXPECT_EQ(parsedOk("--mode=gofree").Compile.Mode, CompileMode::GoFree);
}

TEST(DriverFlagTest, EngineRoundTrips) {
  EXPECT_EQ(parsedOk("--engine=vm").Exec.Engine, ExecEngine::Vm);
  EXPECT_EQ(parsedOk("--engine=ast").Exec.Engine, ExecEngine::Ast);
}

TEST(DriverFlagTest, EntryRoundTrips) {
  EXPECT_EQ(parsedOk("--entry=bench").Entry, "bench");
}

TEST(DriverFlagTest, TargetsRoundTrips) {
  EXPECT_EQ(parsedOk("--targets=all").Compile.Targets,
            escape::FreeTargets::All);
  EXPECT_EQ(parsedOk("--targets=sm").Compile.Targets,
            escape::FreeTargets::SlicesAndMaps);
  EXPECT_EQ(parsedOk("--targets=none").Compile.Targets,
            escape::FreeTargets::None);
}

TEST(DriverFlagTest, GcRoundTrips) {
  EXPECT_EQ(parsedOk("--gc=marksweep").Exec.Heap.Gc.Backend,
            rt::GcBackendKind::MarkSweep);
  EXPECT_EQ(parsedOk("--gc=generational").Exec.Heap.Gc.Backend,
            rt::GcBackendKind::Generational);
  EXPECT_EQ(parsedOk("--gc=gen").Exec.Heap.Gc.Backend,
            rt::GcBackendKind::Generational);
  EXPECT_EQ(parsedOk("--gc=rc").Exec.Heap.Gc.Backend, rt::GcBackendKind::Rc);
  EXPECT_EQ(parsedOk("--gc=gogc=250").Exec.Heap.Gc.Gogc, 250);
  EXPECT_EQ(parsedOk("--gc=gogc=-1").Exec.Heap.Gc.Gogc, -1); // Go-GCOff
  EXPECT_EQ(parsedOk("--gc=min-trigger=65536").Exec.Heap.Gc.MinHeapTrigger,
            65536u);
  EXPECT_EQ(parsedOk("--gc=workers=4").Exec.Heap.Gc.Workers, 4);
  EXPECT_TRUE(parsedOk("--gc=eager-sweep=1").Exec.Heap.Gc.EagerSweep);
  EXPECT_FALSE(parsedOk("--gc=eager-sweep=0").Exec.Heap.Gc.EagerSweep);
  EXPECT_TRUE(parsedOk("--gc=verify=1").Exec.Heap.Gc.Verify);
  EXPECT_EQ(parsedOk("--gc=nursery=32768").Exec.Heap.Gc.NurseryBytes, 32768u);
  EXPECT_EQ(parsedOk("--gc=promote-after=3").Exec.Heap.Gc.PromoteAfter, 3);
  EXPECT_EQ(parsedOk("--gc=zct-threshold=256").Exec.Heap.Gc.ZctThreshold,
            256u);
  EXPECT_TRUE(parsedOk("--gc=conc=1").Exec.Heap.Gc.Concurrent);
  EXPECT_TRUE(parsedOk("--gc=conc=on").Exec.Heap.Gc.Concurrent);
  EXPECT_FALSE(parsedOk("--gc=conc=0").Exec.Heap.Gc.Concurrent);
  EXPECT_FALSE(parsedOk("--gc=conc=off").Exec.Heap.Gc.Concurrent);
  EXPECT_EQ(parsedOk("--gc=chaos=7").Exec.Heap.Gc.TcfreeChaos, 7u);
  EXPECT_EQ(parsedOk("--gc=chaos=0").Exec.Heap.Gc.TcfreeChaos, 0u)
      << "chaos=0 disables the knob";
  // Combined form, and composition: later tokens touch only their own key.
  PipelineOptions P =
      parsedOk("--gc=generational,nursery=8192,promote-after=1,verify=1");
  EXPECT_EQ(P.Exec.Heap.Gc.Backend, rt::GcBackendKind::Generational);
  EXPECT_EQ(P.Exec.Heap.Gc.NurseryBytes, 8192u);
  EXPECT_EQ(P.Exec.Heap.Gc.PromoteAfter, 1);
  EXPECT_TRUE(P.Exec.Heap.Gc.Verify);
  EXPECT_EQ(P.Exec.Heap.Gc.Gogc, 100) << "unmentioned keys keep defaults";
  std::string Err;
  ASSERT_TRUE(
      parseFlags({"--gc=rc,zct-threshold=64", "--gc=min-trigger=4096"}, P,
                 &Err))
      << Err;
  EXPECT_EQ(P.Exec.Heap.Gc.Backend, rt::GcBackendKind::Rc)
      << "a later --gc must not reset earlier tokens it does not mention";
  EXPECT_EQ(P.Exec.Heap.Gc.ZctThreshold, 64u);
  EXPECT_EQ(P.Exec.Heap.Gc.MinHeapTrigger, 4096u);
}

TEST(DriverFlagTest, MockRoundTrips) {
  EXPECT_EQ(parsedOk("--mock=off").Exec.Heap.Mock, rt::MockTcfree::Off);
  EXPECT_EQ(parsedOk("--mock=zero").Exec.Heap.Mock, rt::MockTcfree::Zero);
  EXPECT_EQ(parsedOk("--mock=flip").Exec.Heap.Mock, rt::MockTcfree::Flip);
}

TEST(DriverFlagTest, NumThreadsRoundTrips) {
  EXPECT_EQ(parsedOk("--num-threads=3").Exec.NumThreads, 3);
  EXPECT_EQ(parsedOk("--num-threads=1024").Exec.NumThreads, 1024);
}

TEST(DriverFlagTest, NumCachesRoundTrips) {
  EXPECT_EQ(parsedOk("--num-caches=8").Exec.Heap.NumCaches, 8);
}

// The pre-GcConfig flags survive as deprecated aliases; each must keep
// parsing and land on the same GcConfig field its --gc key sets (scripted
// runs must not break). They are deliberately absent from usageText.
TEST(DriverFlagTest, DeprecatedGcAliasesStillParse) {
  EXPECT_EQ(parsedOk("--gogc=250").Exec.Heap.Gc.Gogc, 250);
  EXPECT_EQ(parsedOk("--gogc=-1").Exec.Heap.Gc.Gogc, -1); // Go-GCOff
  EXPECT_EQ(parsedOk("--gc-min-trigger=65536").Exec.Heap.Gc.MinHeapTrigger,
            65536u);
  EXPECT_EQ(parsedOk("--gc-min-trigger=0").Exec.Heap.Gc.MinHeapTrigger, 0u);
  EXPECT_EQ(parsedOk("--gc-workers=4").Exec.Heap.Gc.Workers, 4);
  EXPECT_EQ(parsedOk("--gc-workers=1").Exec.Heap.Gc.Workers, 1);
  EXPECT_EQ(parsedOk("--gc-workers=256").Exec.Heap.Gc.Workers, 256);
  EXPECT_TRUE(parsedOk("--gc-eager-sweep").Exec.Heap.Gc.EagerSweep);
  EXPECT_TRUE(parsedOk("--gc-eager-sweep=1").Exec.Heap.Gc.EagerSweep);
  EXPECT_TRUE(parsedOk("--gc-eager-sweep=true").Exec.Heap.Gc.EagerSweep);
  EXPECT_FALSE(parsedOk("--gc-eager-sweep=0").Exec.Heap.Gc.EagerSweep);
  EXPECT_FALSE(parsedOk("--gc-eager-sweep=false").Exec.Heap.Gc.EagerSweep);
  EXPECT_TRUE(parsedOk("--verify-heap").Exec.Heap.Gc.Verify);
  EXPECT_TRUE(parsedOk("--verify-heap=1").Exec.Heap.Gc.Verify);
  EXPECT_TRUE(parsedOk("--verify-heap=true").Exec.Heap.Gc.Verify);
  EXPECT_FALSE(parsedOk("--verify-heap=0").Exec.Heap.Gc.Verify);
  EXPECT_FALSE(parsedOk("--verify-heap=false").Exec.Heap.Gc.Verify);
}

// The deprecation warning is observable as a counter, not just a stderr
// line: each deprecated flag warns exactly once per process, and the
// modern --gc= spelling never warns -- even when both set the same
// GcConfig field in one parse sequence.
TEST(DriverFlagTest, DeprecationWarningsCountOncePerFlag) {
  PipelineOptions P;
  std::string Err;
  ASSERT_TRUE(parseFlags({"--gc-eager-sweep=1", "--gc=eager-sweep=0"}, P,
                         &Err))
      << Err;
  EXPECT_FALSE(P.Exec.Heap.Gc.EagerSweep) << "later --gc= wins the field";
  unsigned After = deprecationWarningCount();
  EXPECT_GE(After, 1u) << "--gc-eager-sweep should have warned";
  // Re-parsing the deprecated alias does not warn a second time (warnings
  // dedup per flag per process)...
  ASSERT_TRUE(parseFlags({"--gc-eager-sweep=1"}, P, &Err)) << Err;
  EXPECT_EQ(deprecationWarningCount(), After);
  // ...and the modern spelling is not deprecated at all.
  ASSERT_TRUE(parseFlags({"--gc=eager-sweep=1,conc=1,chaos=3"}, P, &Err))
      << Err;
  EXPECT_EQ(deprecationWarningCount(), After);
}

TEST(DriverFlagTest, MaxStepsRoundTrips) {
  EXPECT_EQ(parsedOk("--max-steps=12345").Exec.Interp.MaxSteps, 12345u);
}

TEST(DriverFlagTest, MigrationPeriodRoundTrips) {
  EXPECT_EQ(parsedOk("--migration-period=1024").Exec.Interp.MigrationPeriod,
            1024u);
  EXPECT_EQ(parsedOk("--migration-period=0").Exec.Interp.MigrationPeriod, 0u);
}

TEST(DriverFlagTest, CoversEveryUsageLine) {
  // Each usage line is "  --name[=VALUE]  help". Every advertised flag must
  // have a round-trip test above (and vice versa).
  std::set<std::string> Advertised;
  std::istringstream In(usageText());
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Dash = Line.find("--");
    ASSERT_NE(Dash, std::string::npos) << "usage line without flag: " << Line;
    size_t End = Line.find_first_of("= ", Dash + 2);
    ASSERT_NE(End, std::string::npos);
    Advertised.insert(Line.substr(Dash + 2, End - Dash - 2));
  }
  EXPECT_EQ(Advertised, testedFlags())
      << "usageText and the round-trip table disagree; update both";
}

//===----------------------------------------------------------------------===//
// Invalid values and unknown flags
//===----------------------------------------------------------------------===//

TEST(DriverFlagTest, RejectsBadValues) {
  EXPECT_NE(invalidErr("--mode=xyz").find("go|gofree"), std::string::npos);
  EXPECT_NE(invalidErr("--targets=slices").find("all|sm|none"),
            std::string::npos);
  invalidErr("--gogc=abc");
  invalidErr("--gc-min-trigger=-1");
  EXPECT_NE(invalidErr("--gc=tricolor").find("marksweep|generational|rc"),
            std::string::npos);
  invalidErr("--gc=gogc=abc");
  invalidErr("--gc=min-trigger=-1");
  invalidErr("--gc=workers=0");
  invalidErr("--gc=workers=257");
  invalidErr("--gc=eager-sweep=banana");
  invalidErr("--gc=verify=banana");
  invalidErr("--gc=nursery=0");
  invalidErr("--gc=promote-after=0");
  invalidErr("--gc=zct-threshold=0");
  invalidErr("--gc=conc=banana");
  invalidErr("--gc=chaos=-1");
  invalidErr("--gc=chaos=sometimes");
  invalidErr("--gc=color=blue");
  invalidErr("--gc=rc,,verify=1");
  invalidErr("--gc");
  invalidErr("--gc=");
  invalidErr("--mock=poison");
  invalidErr("--num-threads=0");
  invalidErr("--num-threads=1025");
  invalidErr("--num-caches=0");
  invalidErr("--gc-workers=0");
  invalidErr("--gc-workers=257");
  invalidErr("--gc-workers=four");
  invalidErr("--gc-eager-sweep=banana");
  invalidErr("--verify-heap=banana");
  invalidErr("--max-steps=0");
  invalidErr("--migration-period=-5");
  // Missing values.
  invalidErr("--mode");
  invalidErr("--mode=");
  invalidErr("--entry=");
  invalidErr("--gogc");
}

TEST(DriverFlagTest, UnknownFlagsPassThrough) {
  // Front-end-only flags and non-flags must stay Unknown, untouched.
  PipelineOptions P;
  EXPECT_EQ(parseFlag("--stats", P), FlagParse::Unknown);
  EXPECT_EQ(parseFlag("--trace-out=t.jsonl", P), FlagParse::Unknown);
  EXPECT_EQ(parseFlag("--json", P), FlagParse::Unknown);
  EXPECT_EQ(parseFlag("prog.minigo", P), FlagParse::Unknown);
  EXPECT_EQ(parseFlag("-mode=go", P), FlagParse::Unknown);
}

TEST(DriverFlagTest, ParseFlagsAppliesAllOrFails) {
  PipelineOptions P;
  std::string Err;
  ASSERT_TRUE(parseFlags({"--mode=go", "--gogc=-1", "--verify-heap"}, P, &Err))
      << Err;
  EXPECT_EQ(P.Compile.Mode, CompileMode::Go);
  EXPECT_EQ(P.Exec.Heap.Gc.Gogc, -1);
  EXPECT_TRUE(P.Exec.Heap.Gc.Verify);

  PipelineOptions Q;
  EXPECT_FALSE(parseFlags({"--mode=go", "--stats"}, Q, &Err));
  EXPECT_NE(Err.find("--stats"), std::string::npos);
  EXPECT_FALSE(parseFlags({"--gogc=zz"}, Q, &Err));

  std::vector<std::string> Vec = {"--num-threads=2", "--num-caches=2"};
  PipelineOptions R;
  ASSERT_TRUE(parseFlags(Vec, R, &Err)) << Err;
  EXPECT_EQ(R.Exec.NumThreads, 2);
  EXPECT_EQ(R.Exec.Heap.NumCaches, 2);
}

TEST(DriverFlagTest, LegNames) {
  EXPECT_STREQ(legName(CompileMode::Go), "go");
  EXPECT_STREQ(legName(CompileMode::GoFree), "gofree");
}

//===----------------------------------------------------------------------===//
// compileAndRun flattening
//===----------------------------------------------------------------------===//

namespace {

const char *OkProg = R"go(
func main(n int) {
  s := make([]int, n)
  for i := 0; i < n; i = i + 1 {
    s[i] = i * i
  }
  acc := 0
  for i := 0; i < n; i = i + 1 {
    acc = acc + s[i]
  }
  sink(acc)
}
)go";

PipelineOptions optsFor(std::initializer_list<std::string_view> Flags) {
  PipelineOptions P;
  std::string Err;
  EXPECT_TRUE(parseFlags(Flags, P, &Err)) << Err;
  return P;
}

} // namespace

TEST(DriverRunTest, OkProgramHasEmptyError) {
  ExecOutcome O = compileAndRun(OkProg, optsFor({"--mode=gofree"}), {10});
  EXPECT_TRUE(O.ok()) << O.Error;
  EXPECT_EQ(O.Run.SinkCount, 1u);
  EXPECT_NE(O.Run.Checksum, 0u);
}

TEST(DriverRunTest, CompileErrorIsFlattenedWithPrefix) {
  ExecOutcome O = compileAndRun("func main(", optsFor({"--mode=go"}), {});
  EXPECT_FALSE(O.ok());
  EXPECT_EQ(O.Error.rfind("compile error:", 0), 0u) << O.Error;
}

TEST(DriverRunTest, PanicIsFlattened) {
  ExecOutcome O = compileAndRun("func main(n int) { panic(7) }",
                                optsFor({"--mode=go"}), {1});
  EXPECT_FALSE(O.ok());
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.PanicValue, 7);
  EXPECT_NE(O.Error.find("panic"), std::string::npos) << O.Error;
}

TEST(DriverRunTest, RuntimeFaultIsFlattened) {
  // Out-of-bounds write: a runtime fault, not a panic.
  ExecOutcome O =
      compileAndRun("func main(n int) { s := make([]int, 1)\n  s[n] = 3 }",
                    optsFor({"--mode=go"}), {5});
  EXPECT_FALSE(O.ok());
  EXPECT_FALSE(O.Run.Panicked);
  EXPECT_FALSE(O.Run.Error.empty());
  EXPECT_NE(O.Error.find(O.Run.Error), std::string::npos)
      << "flattened error should carry the interpreter fault";
}

TEST(DriverRunTest, OutOfFuelIsFlattened) {
  ExecOutcome O = compileAndRun(OkProg, optsFor({"--mode=go", "--max-steps=5"}),
                                {1000});
  EXPECT_FALSE(O.ok());
  EXPECT_TRUE(O.Run.OutOfFuel);
}

//===----------------------------------------------------------------------===//
// outcomeJson
//===----------------------------------------------------------------------===//

TEST(DriverJsonTest, CarriesSchemaVersionLegAndObservables) {
  ExecOutcome O = compileAndRun(OkProg, optsFor({"--mode=gofree"}), {10});
  ASSERT_TRUE(O.ok()) << O.Error;
  std::string J = outcomeJson(O, legName(CompileMode::GoFree));
  EXPECT_EQ(J.rfind("{\"v\":2,", 0), 0u) << J;
  EXPECT_NE(J.find("\"leg\":\"gofree\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"ok\":true"), std::string::npos) << J;
  EXPECT_NE(J.find("\"error\":\"\""), std::string::npos) << J;
  char Want[64];
  std::snprintf(Want, sizeof(Want), "\"checksum\":\"%016llx\"",
                (unsigned long long)O.Run.Checksum);
  EXPECT_NE(J.find(Want), std::string::npos) << J;
  EXPECT_NE(J.find("\"stats\":{"), std::string::npos) << J;
  // v2 addition: the gc object names the backend and its counters.
  EXPECT_NE(J.find("\"gc\":{\"backend\":\"marksweep\""),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"minor_cycles\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"zct_drains\":"), std::string::npos) << J;
  // Concurrent-mark counters ride the same gc object.
  EXPECT_NE(J.find("\"conc_cycles\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"assists\":"), std::string::npos) << J;
}

TEST(DriverJsonTest, BackendNameFollowsGcFlag) {
  ExecOutcome O = compileAndRun(
      OkProg, optsFor({"--mode=gofree", "--gc=generational"}), {10});
  ASSERT_TRUE(O.ok()) << O.Error;
  EXPECT_STREQ(O.GcBackend, "generational");
  std::string J = outcomeJson(O, "gofree");
  EXPECT_NE(J.find("\"gc\":{\"backend\":\"generational\""),
            std::string::npos)
      << J;
}

TEST(DriverJsonTest, ErrorStaysOneEscapedLine) {
  // Compile diagnostics are multi-line; the JSON record must stay one line
  // with the newlines escaped.
  ExecOutcome O = compileAndRun("func main(\nfunc g() {}",
                                optsFor({"--mode=go"}), {});
  ASSERT_FALSE(O.ok());
  std::string J = outcomeJson(O, "go");
  EXPECT_EQ(J.find('\n'), std::string::npos) << J;
  EXPECT_NE(J.find("\"ok\":false"), std::string::npos) << J;
  EXPECT_NE(J.find("compile error:"), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Chaos knob edge semantics. The parse pins above say chaos=0 round-trips;
// these pin what the *runtime* does with the edges: 0 is "off" (notably:
// no modulo-by-zero on the call-counting path), 1 forces every tcfree down
// the GcRunning give-up path.
//===----------------------------------------------------------------------===//

TEST(DriverRunTest, ChaosZeroDisablesForcing) {
  ExecOutcome O = compileAndRun(
      OkProg, optsFor({"--mode=gofree", "--gc=chaos=0"}), {64});
  ASSERT_TRUE(O.ok()) << O.Error;
  EXPECT_EQ(O.Stats.TcfreeChaosForced, 0u);
  EXPECT_GT(O.Stats.TcfreeCalls, 0u);
  EXPECT_GT(O.Stats.tcfreeFreedBytes(), 0u)
      << "chaos=0 must behave exactly like no chaos: frees happen";
}

TEST(DriverRunTest, ChaosOneForcesEveryTcfree) {
  ExecOutcome O = compileAndRun(
      OkProg, optsFor({"--mode=gofree", "--gc=chaos=1"}), {64});
  ASSERT_TRUE(O.ok()) << O.Error;
  EXPECT_GT(O.Stats.TcfreeCalls, 0u);
  EXPECT_GT(O.Stats.TcfreeChaosForced, 0u);
  EXPECT_GE(O.Stats.TcfreeGiveUps, O.Stats.TcfreeChaosForced);
  EXPECT_EQ(O.Stats.tcfreeFreedBytes(), 0u)
      << "every call was forced to give up; nothing tcfrees";
  // Give-ups only defer reclamation to the GC -- observable behavior
  // must not change.
  ExecOutcome Base = compileAndRun(OkProg, optsFor({"--mode=gofree"}), {64});
  ASSERT_TRUE(Base.ok());
  EXPECT_EQ(O.Run.Checksum, Base.Run.Checksum);
}

TEST(DriverRunTest, OutcomeJsonCarriesPausePercentiles) {
  // Force at least one GC so the percentile fields are live, then check
  // the v2 record carries them and they are ordered.
  ExecOutcome O = compileAndRun(
      OkProg, optsFor({"--mode=gofree", "--gc=min-trigger=4096"}), {4096});
  ASSERT_TRUE(O.ok()) << O.Error;
  std::string J = outcomeJson(O, "gofree");
  EXPECT_NE(J.find("\"pause_p50_us\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pause_p99_us\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pause_p999_us\":"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pauses\":"), std::string::npos) << J;
  EXPECT_LE(O.Stats.pausePercentileUs(0.50), O.Stats.pausePercentileUs(0.99));
  EXPECT_LE(O.Stats.pausePercentileUs(0.99), O.Stats.pausePercentileUs(0.999));
  // The percentile is a conservative upper bound clamped to the observed
  // max, so it can never exceed it (sub-microsecond pauses report 0).
  EXPECT_LE(O.Stats.pausePercentileUs(0.999),
            O.Stats.GcMaxPauseNanos / 1000 + 1);
}
