//===- tests/InterpTest.cpp - End-to-end execution tests ------------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// These tests run MiniGo programs through the full pipeline (parse ->
// analyze -> instrument -> interpret on the runtime) and check language
// semantics, the Go/GoFree behavioral equivalence, and the interaction
// with GC and tcfree.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::compiler;

namespace {

ExecOutcome runModeRaw(const std::string &Src, CompileMode Mode,
                       const std::vector<int64_t> &Args = {},
                       ExecOptions EO = {}) {
  CompileOptions CO;
  CO.Mode = Mode;
  Compilation C = compile(Src, CO);
  EXPECT_TRUE(C.ok()) << C.Errors;
  if (!C.ok())
    return {};
  return execute(C, "main", Args, EO);
}

ExecOutcome runMode(const std::string &Src, CompileMode Mode,
                    const std::vector<int64_t> &Args = {},
                    ExecOptions EO = {}) {
  ExecOutcome O = runModeRaw(Src, Mode, Args, EO);
  EXPECT_TRUE(O.Run.ok()) << O.Run.Error;
  return O;
}

uint64_t checksum(const std::string &Src,
                  const std::vector<int64_t> &Args = {}) {
  return runMode(Src, CompileMode::GoFree, Args).Run.Checksum;
}

/// Checksum must be identical whether or not tcfree instrumentation runs.
void expectModeEquivalence(const std::string &Src,
                           const std::vector<int64_t> &Args = {}) {
  ExecOutcome Go = runMode(Src, CompileMode::Go, Args);
  ExecOutcome Free = runMode(Src, CompileMode::GoFree, Args);
  EXPECT_EQ(Go.Run.Checksum, Free.Run.Checksum)
      << "GoFree changed observable behavior";
  EXPECT_EQ(Go.Run.SinkCount, Free.Run.SinkCount);
}

} // namespace

//===----------------------------------------------------------------------===//
// Core semantics
//===----------------------------------------------------------------------===//

TEST(InterpTest, ArithmeticAndSink) {
  uint64_t A = checksum("func main() {\n"
                        "  sink(2 + 3*4)\n"
                        "  sink(10 / 3)\n"
                        "  sink(10 % 3)\n"
                        "  sink(-5)\n"
                        "}\n");
  uint64_t B = checksum("func main() {\n"
                        "  sink(14)\n  sink(3)\n  sink(1)\n  sink(-5)\n"
                        "}\n");
  EXPECT_EQ(A, B);
}

TEST(InterpTest, ShortCircuitEvaluation) {
  // The right operand must not run when the left decides: division by zero
  // in the unevaluated arm must not fault.
  ExecOutcome O = runMode("func boom(x int) bool {\n"
                          "  sink(1 / x)\n"
                          "  return true\n"
                          "}\n"
                          "func main() {\n"
                          "  z := 0\n"
                          "  if false && boom(z) { sink(1) }\n"
                          "  if true || boom(z) { sink(2) }\n"
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_EQ(O.Run.SinkCount, 1u);
}

TEST(InterpTest, ControlFlow) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  total := 0\n"
                     "  for i := 0; i < 10; i = i + 1 {\n"
                     "    if i % 2 == 0 { continue }\n"
                     "    if i == 9 { break }\n"
                     "    total = total + i\n"
                     "  }\n"
                     "  sink(total)\n" // 1+3+5+7 = 16
                     "}\n"),
            checksum("func main() {\n  sink(16)\n}\n"));
}

TEST(InterpTest, PointersAndStructs) {
  EXPECT_EQ(checksum("type P struct { x int\n y int\n }\n"
                     "func main() {\n"
                     "  p := P{x: 1, y: 2}\n"
                     "  q := p\n"        // value copy
                     "  q.x = 100\n"
                     "  sink(p.x + q.x)\n" // 1 + 100
                     "  r := &p\n"
                     "  r.y = 50\n"
                     "  sink(p.y)\n"       // through-pointer store
                     "}\n"),
            checksum("func main() {\n  sink(101)\n  sink(50)\n}\n"));
}

TEST(InterpTest, PointerChains) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  x := 5\n"
                     "  p := &x\n"
                     "  pp := &p\n"
                     "  **pp = 9\n"
                     "  sink(x)\n"
                     "  sink(*p)\n"
                     "}\n"),
            checksum("func main() {\n  sink(9)\n  sink(9)\n}\n"));
}

TEST(InterpTest, SlicesBasics) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 3)\n"
                     "  s[0] = 10\n  s[1] = 20\n  s[2] = 30\n"
                     "  sink(s[0] + s[1] + s[2])\n"
                     "  sink(len(s))\n"
                     "  t := s\n" // Shared backing array.
                     "  t[0] = 99\n"
                     "  sink(s[0])\n"
                     "}\n"),
            checksum("func main() {\n  sink(60)\n  sink(3)\n  sink(99)\n}\n"));
}

TEST(InterpTest, AppendGrowsAndCopies) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 0)\n"
                     "  for i := 0; i < 100; i = i + 1 {\n"
                     "    s = append(s, i*i)\n"
                     "  }\n"
                     "  sink(len(s))\n"
                     "  sink(s[0] + s[50] + s[99])\n"
                     "  sink(cap(s) >= 100)\n"
                     "}\n"),
            checksum("func main() {\n"
                     "  sink(100)\n  sink(0 + 2500 + 9801)\n  sink(true)\n"
                     "}\n"));
}

TEST(InterpTest, AppendAliasingSemantics) {
  // Appending within capacity writes through the shared array; growth
  // detaches, exactly like Go.
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 1, 2)\n"
                     "  s[0] = 7\n"
                     "  t := append(s, 8)\n"
                     "  sink(t[0] + t[1])\n"
                     "  u := append(t, 9)\n" // t is full: u detaches
                     "  u[0] = 100\n"
                     "  sink(t[0])\n"        // unchanged
                     "  sink(u[0] + u[2])\n"
                     "}\n"),
            checksum("func main() {\n"
                     "  sink(15)\n  sink(7)\n  sink(109)\n"
                     "}\n"));
}

TEST(InterpTest, MapsBasics) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  m := make(map[int]int)\n"
                     "  for i := 0; i < 200; i = i + 1 {\n"
                     "    m[i] = i * 2\n"
                     "  }\n"
                     "  sink(len(m))\n"
                     "  sink(m[13] + m[199])\n"
                     "  sink(m[12345])\n" // missing -> zero
                     "  delete(m, 13)\n"
                     "  sink(m[13])\n"
                     "  sink(len(m))\n"
                     "}\n"),
            checksum("func main() {\n"
                     "  sink(200)\n  sink(26 + 398)\n  sink(0)\n  sink(0)\n"
                     "  sink(199)\n"
                     "}\n"));
}

TEST(InterpTest, MapWithSliceValues) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  m := make(map[int][]int)\n"
                     "  for i := 0; i < 20; i = i + 1 {\n"
                     "    s := make([]int, 2)\n"
                     "    s[0] = i\n    s[1] = i * 10\n"
                     "    m[i] = s\n"
                     "  }\n"
                     "  v := m[7]\n"
                     "  sink(v[0] + v[1])\n"
                     "}\n"),
            checksum("func main() {\n  sink(77)\n}\n"));
}

TEST(InterpTest, NilMapReadsAreZeroWritesFault) {
  ExecOutcome O = runMode("func main() {\n"
                          "  var m map[int]int\n"
                          "  sink(len(m))\n"
                          "  sink(m[5])\n"
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_EQ(O.Run.SinkCount, 2u);

  CompileOptions CO;
  Compilation C = compile("func main() {\n"
                          "  var m map[int]int\n"
                          "  m[1] = 2\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  ExecOutcome Bad = execute(C, "main");
  EXPECT_NE(Bad.Run.Error.find("nil map"), std::string::npos);
}

TEST(InterpTest, FunctionsAndMultiReturn) {
  EXPECT_EQ(checksum("func divmod(a int, b int) (int, int) {\n"
                     "  return a / b, a % b\n"
                     "}\n"
                     "func main() {\n"
                     "  q, r := divmod(17, 5)\n"
                     "  sink(q)\n  sink(r)\n"
                     "  a, b := divmod(9, 2)\n"
                     "  a, _ = divmod(a+b, 2)\n"
                     "  sink(a)\n"
                     "}\n"),
            checksum("func main() {\n  sink(3)\n  sink(2)\n  sink(2)\n}\n"));
}

TEST(InterpTest, RecursionFibonacci) {
  EXPECT_EQ(checksum("func fib(n int) int {\n"
                     "  if n < 2 { return n }\n"
                     "  return fib(n-1) + fib(n-2)\n"
                     "}\n"
                     "func main() {\n  sink(fib(15))\n}\n"),
            checksum("func main() {\n  sink(610)\n}\n"));
}

TEST(InterpTest, ReturnForwardsMultipleResults) {
  EXPECT_EQ(checksum("func two() (int, int) { return 3, 4 }\n"
                     "func fwd() (int, int) { return two() }\n"
                     "func main() {\n"
                     "  a, b := fwd()\n"
                     "  sink(a*10 + b)\n"
                     "}\n"),
            checksum("func main() {\n  sink(34)\n}\n"));
}

TEST(InterpTest, DeferRunsInReverseOrderAtExit) {
  EXPECT_EQ(checksum("func note(x int) {\n  sink(x)\n}\n"
                     "func f() {\n"
                     "  defer note(1)\n"
                     "  defer note(2)\n"
                     "  sink(0)\n"
                     "}\n"
                     "func main() {\n  f()\n  sink(3)\n}\n"),
            checksum("func main() {\n"
                     "  sink(0)\n  sink(2)\n  sink(1)\n  sink(3)\n"
                     "}\n"));
}

TEST(InterpTest, DeferArgsEvaluatedAtDeferTime) {
  EXPECT_EQ(checksum("func note(x int) {\n  sink(x)\n}\n"
                     "func main() {\n"
                     "  x := 1\n"
                     "  defer note(x)\n"
                     "  x = 99\n"
                     "  sink(x)\n"
                     "}\n"),
            checksum("func main() {\n  sink(99)\n  sink(1)\n}\n"));
}

TEST(InterpTest, PanicUnwindsAndRunsDefers) {
  ExecOutcome O = runModeRaw("func note(x int) {\n  sink(x)\n}\n"
                          "func inner() {\n"
                          "  defer note(7)\n"
                          "  panic(42)\n"
                          "}\n"
                          "func main() {\n"
                          "  defer note(8)\n"
                          "  inner()\n"
                          "  sink(999)\n" // Never reached.
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.PanicValue, 42);
  EXPECT_EQ(O.Run.SinkCount, 2u); // note(7) then note(8).
}

TEST(InterpTest, PanicInsideExpressionUnwinds) {
  ExecOutcome O = runModeRaw("func boom() int {\n  panic(5)\n}\n"
                          "func main() {\n"
                          "  x := 1 + boom()\n"
                          "  sink(x)\n"
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_TRUE(O.Run.Panicked);
  EXPECT_EQ(O.Run.SinkCount, 0u);
}

//===----------------------------------------------------------------------===//
// Faults
//===----------------------------------------------------------------------===//

namespace {
std::string runExpectError(const std::string &Src) {
  Compilation C = compile(Src, {});
  EXPECT_TRUE(C.ok()) << C.Errors;
  ExecOutcome O = execute(C, "main");
  EXPECT_FALSE(O.Run.ok());
  return O.Run.Error;
}
} // namespace

TEST(InterpTest, NilDerefFaults) {
  EXPECT_NE(runExpectError("type T struct { v int\n }\n"
                           "func main() {\n"
                           "  var p *T\n"
                           "  sink(p.v)\n"
                           "}\n")
                .find("nil pointer"),
            std::string::npos);
}

TEST(InterpTest, BoundsCheckFaults) {
  EXPECT_NE(runExpectError("func main() {\n"
                           "  s := make([]int, 3)\n"
                           "  i := 5\n"
                           "  sink(s[i])\n"
                           "}\n")
                .find("out of range"),
            std::string::npos);
}

TEST(InterpTest, DivideByZeroFaults) {
  EXPECT_NE(runExpectError("func main() {\n"
                           "  z := 0\n"
                           "  sink(1 / z)\n"
                           "}\n")
                .find("divide by zero"),
            std::string::npos);
}

TEST(InterpTest, FuelLimitStopsRunawayLoops) {
  Compilation C = compile("func main() {\n  for {\n  }\n}\n", {});
  ASSERT_TRUE(C.ok());
  ExecOptions EO;
  EO.Interp.MaxSteps = 10000;
  ExecOutcome O = execute(C, "main", {}, EO);
  EXPECT_TRUE(O.Run.OutOfFuel);
}

TEST(InterpTest, StackOverflowIsCaught) {
  Compilation C = compile("func down(n int) int {\n"
                          "  return down(n + 1)\n"
                          "}\n"
                          "func main() {\n  sink(down(0))\n}\n",
                          {});
  ASSERT_TRUE(C.ok());
  ExecOutcome O = execute(C, "main");
  EXPECT_TRUE(O.Run.OutOfFuel);
}

//===----------------------------------------------------------------------===//
// Escape interactions: boxing, stack allocation, GC
//===----------------------------------------------------------------------===//

TEST(InterpTest, EscapedLocalIsBoxedAndSurvives) {
  // &local escapes through the return value; the callee frame dies but the
  // box lives on (Go's "moved to heap").
  EXPECT_EQ(checksum("func cell(v int) *int {\n"
                     "  x := v\n"
                     "  return &x\n"
                     "}\n"
                     "func main() {\n"
                     "  a := cell(5)\n"
                     "  b := cell(6)\n"
                     "  *a = *a + *b\n"
                     "  sink(*a)\n"
                     "}\n"),
            checksum("func main() {\n  sink(11)\n}\n"));
}

TEST(InterpTest, BoxedLoopVariablesKeepIdentity) {
  // Each iteration's variable is a distinct box, like Go closures would see.
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]*int, 0)\n"
                     "  for i := 0; i < 5; i = i + 1 {\n"
                     "    v := i * 10\n"
                     "    s = append(s, &v)\n"
                     "  }\n"
                     "  total := 0\n"
                     "  for j := 0; j < 5; j = j + 1 {\n"
                     "    total = total + *s[j]\n"
                     "  }\n"
                     "  sink(total)\n" // 0+10+20+30+40
                     "}\n"),
            checksum("func main() {\n  sink(100)\n}\n"));
}

TEST(InterpTest, StackAllocatedSlicesWorkInLoops) {
  // Constant-size non-escaping slices reuse one stack slot per site.
  ExecOutcome O = runMode("func main() {\n"
                          "  total := 0\n"
                          "  for i := 0; i < 1000; i = i + 1 {\n"
                          "    buf := make([]int, 8)\n"
                          "    buf[0] = i\n"
                          "    buf[7] = i * 2\n"
                          "    total = total + buf[0] + buf[7]\n"
                          "  }\n"
                          "  sink(total)\n"
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_EQ(O.Stats.AllocCountByCat[(int)rt::AllocCat::Slice], 0u)
      << "constant-size non-escaping slice must not touch the heap";
  EXPECT_EQ(O.Stats.StackAllocCountByCat[(int)rt::AllocCat::Slice], 1000u);
}

TEST(InterpTest, GcCollectsGarbageMidRun) {
  ExecOptions EO;
  EO.Heap.Gc.MinHeapTrigger = 64 * 1024;
  ExecOutcome O = runMode("func main(n int) {\n"
                          "  total := 0\n"
                          "  for i := 0; i < n; i = i + 1 {\n"
                          "    s := make([]int, i%100 + 50)\n"
                          "    s[0] = i\n"
                          "    total = total + s[0]\n"
                          "  }\n"
                          "  sink(total)\n"
                          "}\n",
                          CompileMode::Go, {3000}, EO);
  EXPECT_GT(O.Stats.GcCycles, 0u);
  EXPECT_LT(O.Stats.PeakLive, 4u << 20);
  EXPECT_EQ(O.Run.Checksum,
            checksum("func main() {\n  sink(4498500)\n}\n"));
}

TEST(InterpTest, LiveDataSurvivesGc) {
  // A long-lived linked structure built while garbage churns: GC must keep
  // every reachable node intact.
  ExecOptions EO;
  EO.Heap.Gc.MinHeapTrigger = 32 * 1024;
  ExecOutcome O = runMode(
      "type Node struct { v int\n next *Node\n }\n"
      "func main(n int) {\n"
      "  var head *Node\n"
      "  for i := 0; i < n; i = i + 1 {\n"
      "    tmp := make([]int, i%64 + 64)\n" // churn
      "    tmp[0] = i\n"
      "    node := &Node{v: tmp[0], next: head}\n"
      "    head = node\n"
      "  }\n"
      "  total := 0\n"
      "  for head != nil {\n"
      "    total = total + head.v\n"
      "    head = head.next\n"
      "  }\n"
      "  sink(total)\n"
      "}\n",
      CompileMode::Go, {2000}, EO);
  EXPECT_GT(O.Stats.GcCycles, 0u);
  EXPECT_EQ(O.Run.Checksum,
            checksum("func main() {\n  sink(1999000)\n}\n"));
}

//===----------------------------------------------------------------------===//
// Go vs GoFree equivalence and tcfree effectiveness
//===----------------------------------------------------------------------===//

TEST(InterpTest, ModeEquivalenceOnSliceChurn) {
  expectModeEquivalence("func main(n int) {\n"
                        "  total := 0\n"
                        "  for i := 1; i < n; i = i + 1 {\n"
                        "    s := make([]int, i%50 + 10)\n"
                        "    s[0] = i\n"
                        "    s[i%10] = i * 2\n"
                        "    total = total + s[0] + s[i%10]\n"
                        "  }\n"
                        "  sink(total)\n"
                        "}\n",
                        {2000});
}

TEST(InterpTest, ModeEquivalenceOnMaps) {
  expectModeEquivalence("func main(n int) {\n"
                        "  total := 0\n"
                        "  for round := 0; round < n; round = round + 1 {\n"
                        "    m := make(map[int]int, round%20)\n"
                        "    for k := 0; k < 50; k = k + 1 {\n"
                        "      m[k*round] = k + round\n"
                        "    }\n"
                        "    total = total + m[round] + len(m)\n"
                        "  }\n"
                        "  sink(total)\n"
                        "}\n",
                        {200});
}

TEST(InterpTest, ModeEquivalenceAcrossCalls) {
  expectModeEquivalence("func produce(n int) []int {\n"
                        "  buf := make([]int, n)\n"
                        "  for i := 0; i < n; i = i + 1 {\n"
                        "    buf[i] = i * i\n"
                        "  }\n"
                        "  return buf\n"
                        "}\n"
                        "func total(s []int) int {\n"
                        "  t := 0\n"
                        "  for i := 0; i < len(s); i = i + 1 {\n"
                        "    t = t + s[i]\n"
                        "  }\n"
                        "  return t\n"
                        "}\n"
                        "func main(n int) {\n"
                        "  acc := 0\n"
                        "  for r := 1; r < n; r = r + 1 {\n"
                        "    tmp := produce(r % 64)\n"
                        "    acc = acc + total(tmp)\n"
                        "  }\n"
                        "  sink(acc)\n"
                        "}\n",
                        {500});
}

TEST(InterpTest, TcfreeActuallyFreesSliceChurn) {
  ExecOptions EO;
  EO.Heap.Gc.MinHeapTrigger = 128 * 1024;
  const char *Src = "func main(n int) {\n"
                    "  total := 0\n"
                    "  for i := 1; i < n; i = i + 1 {\n"
                    "    s := make([]int, i%100 + 100)\n"
                    "    s[0] = i\n"
                    "    total = total + s[0]\n"
                    "  }\n"
                    "  sink(total)\n"
                    "}\n";
  ExecOutcome Go = runMode(Src, CompileMode::Go, {5000}, EO);
  ExecOutcome Free = runMode(Src, CompileMode::GoFree, {5000}, EO);
  // The loop slice is freed every iteration.
  EXPECT_GT(Free.Stats.freeRatio(), 0.9);
  EXPECT_EQ(Go.Stats.tcfreeFreedBytes(), 0u);
  // Fewer (here: zero vs several) GC cycles.
  EXPECT_LT(Free.Stats.GcCycles, Go.Stats.GcCycles);
  EXPECT_LE(Free.Stats.PeakLive, Go.Stats.PeakLive);
}

TEST(InterpTest, MapGrowthFreesOldBuckets) {
  ExecOutcome O = runMode("func main() {\n"
                          "  m := make(map[int]int)\n"
                          "  for i := 0; i < 10000; i = i + 1 {\n"
                          "    m[i] = i\n"
                          "  }\n"
                          "  sink(len(m))\n"
                          "}\n",
                          CompileMode::GoFree);
  EXPECT_GT(O.Stats.FreedBytesBySource[(int)rt::FreeSource::MapGrowOld], 0u);
}

TEST(InterpTest, InstrumentationInsertsExpectedFrees) {
  CompileOptions CO;
  Compilation C = compile("func main(n int) {\n"
                          "  s := make([]int, n)\n"
                          "  m := make(map[int]int, n)\n"
                          "  s[0] = 1\n"
                          "  m[1] = 2\n"
                          "  sink(s[0] + m[1])\n"
                          "}\n",
                          CO);
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(C.Instr.SliceFrees, 1u);
  EXPECT_EQ(C.Instr.MapFrees, 1u);
}

TEST(InterpTest, DoubleAliasFreeIsHarmless) {
  // Two same-scope aliases both eligible: the second tcfree is a benign
  // double free (section 5).
  expectModeEquivalence("func main(n int) {\n"
                        "  s := make([]int, n)\n"
                        "  t := s\n"
                        "  s[0] = 3\n"
                        "  sink(t[0])\n"
                        "}\n",
                        {100});
}

TEST(InterpTest, CompoundAssignAndIncDecSemantics) {
  expectModeEquivalence("func main() {\n"
                        "  x := 10\n"
                        "  x += 5\n"
                        "  x *= 2\n"
                        "  x -= 3\n"
                        "  x /= 2\n"
                        "  x %= 7\n"
                        "  x++\n"
                        "  x++\n"
                        "  x--\n"
                        "  sink(x)\n" // ((10+5)*2-3)/2%7 = 27%7=6; +2-1 = 7
                        "  s := make([]int, 3)\n"
                        "  s[1] += 41\n"
                        "  s[1]++\n"
                        "  sink(s[1])\n"
                        "}\n");
  uint64_t Got = checksum("func main() {\n"
                          "  x := 10\n  x += 5\n  x *= 2\n  x -= 3\n"
                          "  x /= 2\n  x %= 7\n  x++\n  x++\n  x--\n"
                          "  sink(x)\n"
                          "  s := make([]int, 3)\n  s[1] += 41\n  s[1]++\n"
                          "  sink(s[1])\n"
                          "}\n");
  EXPECT_EQ(Got, checksum("func main() {\n  sink(7)\n  sink(42)\n}\n"));
}

TEST(InterpTest, IfInitScopesOverBothBranches) {
  EXPECT_EQ(checksum("func f(n int) int { return n * 3 }\n"
                     "func main() {\n"
                     "  v := 100\n"
                     "  if v := f(2); v > 5 {\n"
                     "    sink(v)\n" // Inner v = 6.
                     "  } else {\n"
                     "    sink(-v)\n"
                     "  }\n"
                     "  sink(v)\n" // Outer v untouched.
                     "}\n"),
            checksum("func main() {\n  sink(6)\n  sink(100)\n}\n"));
}

TEST(InterpTest, RangeOverSlice) {
  expectModeEquivalence("func main(n int) {\n"
                        "  s := make([]int, n)\n"
                        "  for i := range s {\n"
                        "    s[i] = i * i\n"
                        "  }\n"
                        "  total := 0\n"
                        "  for _, v := range s {\n"
                        "    total += v\n"
                        "  }\n"
                        "  sink(total)\n"
                        "}\n",
                        {10});
  EXPECT_EQ(checksum("func main(n int) {\n"
                     "  s := make([]int, n)\n"
                     "  for i := range s { s[i] = i * i }\n"
                     "  total := 0\n"
                     "  for _, v := range s { total += v }\n"
                     "  sink(total)\n"
                     "}\n",
                     {10}),
            checksum("func main() {\n  sink(285)\n}\n"));
}

TEST(InterpTest, RangeEvaluatesExpressionOnce) {
  // Appending inside the loop must not extend the iteration (the range
  // expression and its length are captured up front, like Go).
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 3)\n"
                     "  s[0] = 1\n  s[1] = 2\n  s[2] = 3\n"
                     "  count := 0\n"
                     "  for i, v := range s {\n"
                     "    s = append(s, v + i)\n"
                     "    count++\n"
                     "  }\n"
                     "  sink(count)\n"
                     "  sink(len(s))\n"
                     "}\n"),
            checksum("func main() {\n  sink(3)\n  sink(6)\n}\n"));
}

TEST(InterpTest, SwitchTaggedWithMultiValueCases) {
  EXPECT_EQ(checksum("func classify(x int) int {\n"
                     "  switch x % 5 {\n"
                     "  case 0:\n"
                     "    return 100\n"
                     "  case 1, 2:\n"
                     "    return 200\n"
                     "  default:\n"
                     "    return 300\n"
                     "  }\n"
                     "}\n"
                     "func main() {\n"
                     "  total := 0\n"
                     "  for i := 0; i < 10; i++ {\n"
                     "    total += classify(i)\n"
                     "  }\n"
                     "  sink(total)\n" // 0,5->100x2; 1,2,6,7->200x4; rest 300x4
                     "}\n"),
            checksum("func main() {\n  sink(2200)\n}\n"));
}

TEST(InterpTest, SwitchTaglessActsAsIfChain) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  x := 7\n"
                     "  switch {\n"
                     "  case x < 5:\n"
                     "    sink(1)\n"
                     "  case x < 10:\n"
                     "    sink(2)\n"
                     "  default:\n"
                     "    sink(3)\n"
                     "  }\n"
                     "}\n"),
            checksum("func main() {\n  sink(2)\n}\n"));
}

TEST(InterpTest, SwitchDefaultInMiddle) {
  // Go allows default anywhere; it still runs only when no case matches.
  EXPECT_EQ(checksum("func main() {\n"
                     "  x := 42\n"
                     "  switch x {\n"
                     "  case 1:\n"
                     "    sink(1)\n"
                     "  default:\n"
                     "    sink(99)\n"
                     "  case 2:\n"
                     "    sink(2)\n"
                     "  }\n"
                     "}\n"),
            checksum("func main() {\n  sink(99)\n}\n"));
}

TEST(InterpTest, SwitchTagEvaluatedOnce) {
  EXPECT_EQ(checksum("func bump() int {\n"
                     "  sink(7)\n" // Observable side effect, exactly once.
                     "  return 2\n"
                     "}\n"
                     "func main() {\n"
                     "  switch bump() {\n"
                     "  case 1:\n    sink(1)\n"
                     "  case 2:\n    sink(2)\n"
                     "  case 3:\n    sink(3)\n"
                     "  }\n"
                     "}\n"),
            checksum("func main() {\n  sink(7)\n  sink(2)\n}\n"));
}

TEST(InterpTest, RangeBreakAndContinue) {
  EXPECT_EQ(checksum("func main() {\n"
                     "  s := make([]int, 10)\n"
                     "  for i := range s { s[i] = i }\n"
                     "  total := 0\n"
                     "  for _, v := range s {\n"
                     "    if v % 2 == 0 { continue }\n"
                     "    if v > 7 { break }\n"
                     "    total += v\n" // 1+3+5+7 = 16
                     "  }\n"
                     "  sink(total)\n"
                     "}\n"),
            checksum("func main() {\n  sink(16)\n}\n"));
}
