//===- tests/TraceTest.cpp - Event-tracing subsystem tests ----------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// Covers the trace sink itself (bounded ring, drop counter, JSON-lines
// output), the runtime hooks (GC phases, every tcfree outcome with its
// give-up reason, mock mode), the per-pass compiler timings, and two
// end-to-end regressions: compare-style legs must not contaminate each
// other's stats, and frees skipped at a panic tail must stay observable as
// GC-reclaimed garbage.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "interp/Interp.h"
#include "runtime/Heap.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace gofree;
using namespace gofree::trace;

namespace {

/// Events of one kind currently in the sink.
std::vector<Event> eventsOfKind(const TraceSink &S, EventKind K) {
  std::vector<Event> Out;
  for (size_t I = 0, N = S.size(); I < N; ++I)
    if (S[I].Kind == K)
      Out.push_back(S[I]);
  return Out;
}

uint64_t countKind(const TraceSink &S, EventKind K) {
  return (uint64_t)eventsOfKind(S, K).size();
}

/// Give-up events carry the reason in Arg and the call count in V0.
uint64_t giveUpsWithReason(const TraceSink &S, GiveUpReason R) {
  uint64_t N = 0;
  for (const Event &E : eventsOfKind(S, EventKind::TcfreeGiveUp))
    if ((GiveUpReason)E.Arg == R)
      N += E.V0;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// The sink: bounded ring, drop accounting, JSON-lines shape
//===----------------------------------------------------------------------===//

TEST(TraceSinkTest, RingIsBoundedAndCountsDrops) {
  TraceSink S(4);
  for (int I = 0; I < 10; ++I)
    S.emit(EventKind::HeapAlloc, 0, (uint64_t)I);
  EXPECT_EQ(S.size(), 4u);
  EXPECT_EQ(S.capacity(), 4u);
  EXPECT_EQ(S.dropped(), 6u);
  // The first four events survive; later ones were dropped, not wrapped.
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(S[I].V0, I);
  S.clear();
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.dropped(), 0u);
  S.emit(EventKind::StackAlloc, 1, 42, 7);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Kind, EventKind::StackAlloc);
  EXPECT_EQ(S[0].Arg, 1);
  EXPECT_EQ(S[0].V0, 42u);
  EXPECT_EQ(S[0].V1, 7u);
}

TEST(TraceSinkTest, TimestampsAreMonotonic) {
  TraceSink S(16);
  for (int I = 0; I < 16; ++I)
    S.emit(EventKind::PassTime, (uint8_t)(I % NumPasses), 1);
  for (size_t I = 1; I < S.size(); ++I)
    EXPECT_LE(S[I - 1].TimeNs, S[I].TimeNs);
}

TEST(TraceSinkTest, JsonLinesAreObjectsWithTerminator) {
  TraceSink S(8);
  S.emit(EventKind::GcPaceTrigger, 0, 1000, 2000);
  S.emit(EventKind::TcfreeFreed, (uint8_t)rt::FreeSource::TcfreeSlice, 64);
  S.emit(EventKind::TcfreeGiveUp, (uint8_t)GiveUpReason::DoubleFree, 1);
  S.emit(EventKind::PassTime, (uint8_t)Pass::EscapeSolve, 12345);
  // Overflow by one so the terminator must carry a non-zero drop count.
  for (int I = 0; I < 5; ++I)
    S.emit(EventKind::HeapAlloc, 0, 8);

  std::ostringstream Os;
  writeJsonLines(Os, S);
  std::istringstream Is(Os.str());
  std::string Line;
  std::vector<std::string> Lines;
  while (std::getline(Is, Line))
    Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), S.size() + 1); // events + trace-end
  for (const std::string &L : Lines) {
    ASSERT_FALSE(L.empty());
    EXPECT_EQ(L.front(), '{');
    EXPECT_EQ(L.back(), '}');
    EXPECT_NE(L.find("\"ev\":\""), std::string::npos) << L;
  }
  EXPECT_NE(Lines[0].find("\"ev\":\"gc-pace-trigger\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"outcome\":\"freed\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"source\":\"slice\""), std::string::npos);
  EXPECT_NE(Lines[2].find("\"reason\":\"double-free\""), std::string::npos);
  EXPECT_NE(Lines[3].find("\"pass\":\"escape-solve\""), std::string::npos);
  EXPECT_NE(Lines.back().find("\"ev\":\"trace-end\""), std::string::npos);
  EXPECT_NE(Lines.back().find("\"dropped\":1"), std::string::npos);
}

TEST(TraceSinkTest, SummarizeFoldsEveryFamily) {
  TraceSink S(32);
  S.emit(EventKind::GcPaceTrigger, 0, 100, 200);
  S.emit(EventKind::GcMarkStart, 0, 100);
  S.emit(EventKind::GcMarkEnd, 0, 50);
  S.emit(EventKind::GcSweepEnd, 0, 4096, 3);
  S.emit(EventKind::GcCycleEnd, 0, 80, 64);
  S.emit(EventKind::TcfreeFreed, (uint8_t)rt::FreeSource::TcfreeMap, 128);
  S.emit(EventKind::TcfreeGiveUp, (uint8_t)GiveUpReason::GcRunning, 5);
  S.emit(EventKind::TcfreeGiveUp, (uint8_t)GiveUpReason::Mock, 2);
  S.emit(EventKind::HeapAlloc, (uint8_t)rt::AllocCat::Slice, 256);
  S.emit(EventKind::StackAlloc, (uint8_t)rt::AllocCat::Other, 24);
  S.emit(EventKind::PassTime, (uint8_t)Pass::Lifetime, 999);

  TraceSummary Sum = summarize(S);
  EXPECT_EQ(Sum.Events, 11u);
  EXPECT_EQ(Sum.DroppedEvents, 0u);
  EXPECT_EQ(Sum.GcPaceTriggers, 1u);
  EXPECT_EQ(Sum.GcCycles, 1u);
  EXPECT_EQ(Sum.GcMarkNanos, 50u);
  EXPECT_EQ(Sum.GcCycleNanos, 80u);
  EXPECT_EQ(Sum.GcSweptBytes, 4096u);
  EXPECT_EQ(Sum.GcSweptObjects, 3u);
  EXPECT_EQ(Sum.TcfreeFreedCount, 1u);
  EXPECT_EQ(Sum.TcfreeFreedBytes, 128u);
  EXPECT_EQ(Sum.FreedBytesBySource[(int)rt::FreeSource::TcfreeMap], 128u);
  // Mock is bucketed but excluded from the give-up total.
  EXPECT_EQ(Sum.GiveUps, 5u);
  EXPECT_EQ(Sum.GiveUpsByReason[(int)GiveUpReason::GcRunning], 5u);
  EXPECT_EQ(Sum.GiveUpsByReason[(int)GiveUpReason::Mock], 2u);
  EXPECT_EQ(Sum.HeapAllocCount[(int)rt::AllocCat::Slice], 1u);
  EXPECT_EQ(Sum.HeapAllocBytes[(int)rt::AllocCat::Slice], 256u);
  EXPECT_EQ(Sum.StackAllocCount[(int)rt::AllocCat::Other], 1u);
  EXPECT_EQ(Sum.PassNanos[(int)Pass::Lifetime], 999u);
  EXPECT_TRUE(Sum.PassSeen[(int)Pass::Lifetime]);
  EXPECT_FALSE(Sum.PassSeen[(int)Pass::Lex]);
}

//===----------------------------------------------------------------------===//
// Runtime hooks: every tcfree outcome is traced with its reason
//===----------------------------------------------------------------------===//

TEST(TraceRuntimeTest, GiveUpReasonsAreBucketed) {
  TraceSink Sink;
  rt::HeapOptions HO;
  HO.Trace = &Sink;
  rt::Heap H(HO);

  uintptr_t A = H.allocate(64, nullptr, rt::AllocCat::Slice, 0);
  ASSERT_NE(A, 0u);

  // nil pointer.
  EXPECT_FALSE(H.tcfreeObject(0, 0, rt::FreeSource::TcfreeObject));
  // Address outside the heap (a stack local).
  int Local = 0;
  EXPECT_FALSE(H.tcfreeObject(reinterpret_cast<uintptr_t>(&Local), 0,
                              rt::FreeSource::TcfreeObject));
  // Span cached by another thread.
  EXPECT_FALSE(H.tcfreeObject(A, 1, rt::FreeSource::TcfreeSlice));
  // A successful free, then a benign double free.
  EXPECT_TRUE(H.tcfreeObject(A, 0, rt::FreeSource::TcfreeSlice));
  EXPECT_FALSE(H.tcfreeObject(A, 0, rt::FreeSource::TcfreeSlice));

  rt::StatsSnapshot S = H.stats().snap();
  EXPECT_EQ(S.TcfreeCalls, 5u);
  EXPECT_EQ(S.TcfreeGiveUps, 4u);
  EXPECT_EQ(S.TcfreeGiveUpsByReason[(int)GiveUpReason::NullAddr], 1u);
  EXPECT_EQ(S.TcfreeGiveUpsByReason[(int)GiveUpReason::UnknownAddr], 1u);
  EXPECT_EQ(S.TcfreeGiveUpsByReason[(int)GiveUpReason::ForeignSpan], 1u);
  EXPECT_EQ(S.TcfreeGiveUpsByReason[(int)GiveUpReason::DoubleFree], 1u);
  // Invariant: the per-reason buckets (minus Mock) partition the give-ups.
  uint64_t Sum = 0;
  for (int R = 0; R < NumGiveUpReasons; ++R)
    if (R != (int)GiveUpReason::Mock)
      Sum += S.TcfreeGiveUpsByReason[R];
  EXPECT_EQ(Sum, S.TcfreeGiveUps);

  // The trace mirrors the counters.
  EXPECT_EQ(giveUpsWithReason(Sink, GiveUpReason::NullAddr), 1u);
  EXPECT_EQ(giveUpsWithReason(Sink, GiveUpReason::UnknownAddr), 1u);
  EXPECT_EQ(giveUpsWithReason(Sink, GiveUpReason::ForeignSpan), 1u);
  EXPECT_EQ(giveUpsWithReason(Sink, GiveUpReason::DoubleFree), 1u);
  std::vector<Event> Freed = eventsOfKind(Sink, EventKind::TcfreeFreed);
  ASSERT_EQ(Freed.size(), 1u);
  EXPECT_EQ(Freed[0].Arg, (uint8_t)rt::FreeSource::TcfreeSlice);
  EXPECT_EQ(Freed[0].V0, 64u);
}

TEST(TraceRuntimeTest, MockIsTracedButNotAGiveUp) {
  TraceSink Sink;
  rt::HeapOptions HO;
  HO.Trace = &Sink;
  HO.Mock = rt::MockTcfree::Zero;
  rt::Heap H(HO);

  uintptr_t A = H.allocate(32, nullptr, rt::AllocCat::Other, 0);
  ASSERT_NE(A, 0u);
  // A mocked tcfree "succeeds" (poisons, returns true)...
  EXPECT_TRUE(H.tcfreeObject(A, 0, rt::FreeSource::TcfreeObject));

  rt::StatsSnapshot S = H.stats().snap();
  // ...so it is not a give-up, but it is bucketed and traced under Mock.
  EXPECT_EQ(S.TcfreeGiveUps, 0u);
  EXPECT_EQ(S.TcfreeGiveUpsByReason[(int)GiveUpReason::Mock], 1u);
  EXPECT_EQ(giveUpsWithReason(Sink, GiveUpReason::Mock), 1u);
  EXPECT_EQ(countKind(Sink, EventKind::TcfreeFreed), 0u);
}

TEST(TraceRuntimeTest, AllocationsAreCategorized) {
  TraceSink Sink;
  rt::HeapOptions HO;
  HO.Trace = &Sink;
  rt::Heap H(HO);

  H.allocate(64, nullptr, rt::AllocCat::Slice, 0);
  H.allocate(128, nullptr, rt::AllocCat::Map, 0);
  // A large allocation gets its own span and V1 = 1.
  H.allocate(1 << 20, nullptr, rt::AllocCat::Slice, 0);

  std::vector<Event> Allocs = eventsOfKind(Sink, EventKind::HeapAlloc);
  ASSERT_EQ(Allocs.size(), 3u);
  EXPECT_EQ(Allocs[0].Arg, (uint8_t)rt::AllocCat::Slice);
  EXPECT_EQ(Allocs[1].Arg, (uint8_t)rt::AllocCat::Map);
  EXPECT_EQ(Allocs[2].V1, 1u); // Large-span flag.
}

TEST(TraceRuntimeTest, GcCycleEmitsPhaseEvents) {
  TraceSink Sink;
  rt::HeapOptions HO;
  HO.Trace = &Sink;
  rt::Heap H(HO);

  // Unreachable garbage (no root scanner installed), then a forced cycle.
  for (int I = 0; I < 64; ++I)
    H.allocate(256, nullptr, rt::AllocCat::Other, 0);
  H.runGc();

  EXPECT_EQ(countKind(Sink, EventKind::GcMarkStart), 1u);
  EXPECT_EQ(countKind(Sink, EventKind::GcMarkEnd), 1u);
  EXPECT_EQ(countKind(Sink, EventKind::GcSweepEnd), 1u);
  EXPECT_EQ(countKind(Sink, EventKind::GcCycleEnd), 1u);
  std::vector<Event> Sweeps = eventsOfKind(Sink, EventKind::GcSweepEnd);
  EXPECT_GE(Sweeps[0].V0, 64u * 256u); // Swept at least the garbage.
  EXPECT_GE(Sweeps[0].V1, 64u);        // Object count.

  TraceSummary Sum = summarize(Sink);
  EXPECT_EQ(Sum.GcCycles, 1u);
  EXPECT_GE(Sum.GcSweptBytes, 64u * 256u);
}

//===----------------------------------------------------------------------===//
// Compiler hooks: per-pass timings
//===----------------------------------------------------------------------===//

TEST(TracePipelineTest, PassTimingsArePopulated) {
  TraceSink Sink;
  compiler::CompileOptions CO;
  CO.Trace = &Sink;
  compiler::Compilation C = compiler::compile("func f(n int) int {\n"
                                              "  s := make([]int, n)\n"
                                              "  s[0] = n\n"
                                              "  return s[0]\n"
                                              "}\n",
                                              CO);
  ASSERT_TRUE(C.ok()) << C.Errors;
  // Every pipeline pass ran and was timed (GoFree mode includes Insert).
  for (int P = 0; P < NumPasses; ++P)
    EXPECT_GT(C.Passes.Nanos[P], 0u) << "pass " << passName((Pass)P);
  // Each timing was also emitted as an event.
  std::vector<Event> Passes = eventsOfKind(Sink, EventKind::PassTime);
  ASSERT_EQ(Passes.size(), (size_t)NumPasses);
  for (const Event &E : Passes)
    EXPECT_EQ(E.V0, C.Passes.Nanos[E.Arg]);
}

TEST(TracePipelineTest, GoModeSkipsInsertPass) {
  compiler::CompileOptions CO;
  CO.Mode = compiler::CompileMode::Go;
  compiler::Compilation C =
      compiler::compile("func f(n int) int { return n }\n", CO);
  ASSERT_TRUE(C.ok()) << C.Errors;
  EXPECT_EQ(C.Passes.Nanos[(int)Pass::Insert], 0u);
  EXPECT_GT(C.Passes.Nanos[(int)Pass::Parse], 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end regressions
//===----------------------------------------------------------------------===//

namespace {

const char *CompareSrc = "func work(n int) int {\n"
                         "  s := make([]int, n)\n"
                         "  s[0] = n\n"
                         "  return s[0]\n"
                         "}\n"
                         "func main(rounds int) {\n"
                         "  acc := 0\n"
                         "  for i := 0; i < rounds; i = i + 1 {\n"
                         "    acc = acc + work(i % 16 + 8)\n"
                         "  }\n"
                         "  sink(acc)\n"
                         "}\n";

} // namespace

// Regression for `gofree compare`: the two legs run in one process and must
// not share heap statistics or a trace sink -- the Go leg must come out
// with no tcfree activity at all even after a GoFree leg ran first.
TEST(TraceEndToEndTest, CompareLegsStatsAreIsolated) {
  compiler::CompileOptions FreeCO;
  FreeCO.Mode = compiler::CompileMode::GoFree;
  compiler::Compilation Free = compiler::compile(CompareSrc, FreeCO);
  ASSERT_TRUE(Free.ok()) << Free.Errors;

  compiler::CompileOptions GoCO;
  GoCO.Mode = compiler::CompileMode::Go;
  compiler::Compilation Go = compiler::compile(CompareSrc, GoCO);
  ASSERT_TRUE(Go.ok()) << Go.Errors;

  TraceSink FreeSink, GoSink;
  compiler::ExecOptions FreeEO, GoEO;
  FreeEO.Heap.Trace = &FreeSink;
  GoEO.Heap.Trace = &GoSink;

  // GoFree leg first, then the Go leg, like compare does.
  compiler::ExecOutcome OFree =
      compiler::execute(Free, "main", {200}, FreeEO);
  ASSERT_TRUE(OFree.Run.ok()) << OFree.Run.Error;
  compiler::ExecOutcome OGo = compiler::execute(Go, "main", {200}, GoEO);
  ASSERT_TRUE(OGo.Run.ok()) << OGo.Run.Error;

  EXPECT_EQ(OFree.Run.Checksum, OGo.Run.Checksum);
  EXPECT_GT(OFree.Stats.TcfreeCalls, 0u);
  EXPECT_GT(countKind(FreeSink, EventKind::TcfreeFreed), 0u);

  // The Go leg saw none of the GoFree leg's activity.
  EXPECT_EQ(OGo.Stats.TcfreeCalls, 0u);
  EXPECT_EQ(OGo.Stats.TcfreeGiveUps, 0u);
  for (int R = 0; R < NumGiveUpReasons; ++R)
    EXPECT_EQ(OGo.Stats.TcfreeGiveUpsByReason[R], 0u);
  EXPECT_EQ(countKind(GoSink, EventKind::TcfreeFreed), 0u);
  EXPECT_EQ(countKind(GoSink, EventKind::TcfreeGiveUp), 0u);
}

// Regression for the panic-tail skip (FreeInserter): a scope whose tail
// panics gets no tcfrees, but the skipped objects are not lost -- they stay
// plain garbage and the collector reclaims them, observably in the trace.
TEST(TraceEndToEndTest, PanicTailSkippedFreesReclaimedByGc) {
  const char *Src = "func work(n int, sz int) int {\n"
                    "  kept := make([]int, sz)\n"
                    "  kept[0] = n\n"
                    "  if n < 0 {\n"
                    "    bad := make([]int, sz)\n"
                    "    bad[0] = n\n"
                    "    panic(bad[0])\n"
                    "  }\n"
                    "  return kept[0]\n"
                    "}\n"
                    "func main(rounds int) {\n"
                    "  acc := 0\n"
                    "  for i := 0; i < rounds; i = i + 1 {\n"
                    "    acc = acc + work(i, i % 16 + 8)\n"
                    "  }\n"
                    "  sink(acc)\n"
                    "  sink(work(0 - 1, 16))\n"
                    "}\n";
  compiler::Compilation C = compiler::compile(Src, {});
  ASSERT_TRUE(C.ok()) << C.Errors;
  // The panic tail suppressed `bad`'s free; `kept`'s frees survive.
  EXPECT_GE(C.Instr.SkippedUnsafeTail, 1u);
  EXPECT_GE(C.Instr.SliceFrees, 1u);

  // Drive the interpreter on our own heap so we can force a GC after the
  // panic unwinds and watch the sweep reclaim the skipped objects.
  TraceSink Sink;
  rt::HeapOptions HO;
  HO.Trace = &Sink;
  rt::Heap H(HO);
  interp::Interp I(*C.Prog, C.Analysis, H, {});
  interp::RunResult R = I.run("main", {100});
  EXPECT_TRUE(R.Panicked);

  // Normal iterations freed `kept` explicitly.
  uint64_t FreedBefore = countKind(Sink, EventKind::TcfreeFreed);
  EXPECT_GT(FreedBefore, 0u);

  // The panic path leaked `kept` and `bad` (their frees were skipped or
  // never reached); after unwinding nothing roots them, so a forced cycle
  // sweeps them -- the trace shows the reclaim.
  H.runGc();
  std::vector<Event> Sweeps = eventsOfKind(Sink, EventKind::GcSweepEnd);
  ASSERT_GE(Sweeps.size(), 1u);
  EXPECT_GT(Sweeps.back().V0, 0u) << "GC reclaimed no skipped garbage";
  EXPECT_GE(Sweeps.back().V1, 2u) << "expected at least kept+bad swept";
}

//===----------------------------------------------------------------------===//
// Ring overflow accounting. The ring is bounded by design; what used to be
// silent truncation is now a per-sink drop counter that the hub merges and
// --trace-summary prints, so a biased merged stream is always flagged.
//===----------------------------------------------------------------------===//

TEST(TraceOverflowTest, TinyRingCountsEveryDroppedEvent) {
  TraceSink S(/*Capacity=*/8);
  for (int I = 0; I < 100; ++I)
    S.emit(EventKind::TcfreeFreed, 0, (uint64_t)I, 0);
  EXPECT_EQ(S.size(), 8u) << "the ring never grows past its capacity";
  EXPECT_EQ(S.dropped(), 92u) << "every rejected emit is counted";
  // The retained prefix is the *first* 8 events, not an arbitrary sample.
  for (size_t I = 0; I < S.size(); ++I)
    EXPECT_EQ(S[I].V0, (uint64_t)I);
  // clear() resets both the cursor and the drop counter.
  S.clear();
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.dropped(), 0u);
}

TEST(TraceOverflowTest, HubMergesAndAttributesDrops) {
  TraceHub Hub(/*CapacityPerSink=*/4);
  TraceSink *A = Hub.makeSink();
  TraceSink *B = Hub.makeSink();
  for (int I = 0; I < 10; ++I)
    A->emit(EventKind::TcfreeFreed); // 6 dropped.
  for (int I = 0; I < 3; ++I)
    B->emit(EventKind::TcfreeFreed); // None dropped.
  EXPECT_EQ(Hub.dropped(), 6u);
  std::vector<uint64_t> PerSink = Hub.droppedBySink();
  ASSERT_EQ(PerSink.size(), 2u);
  EXPECT_EQ(PerSink[0], 6u) << "the overflowing sink is identifiable";
  EXPECT_EQ(PerSink[1], 0u);
  // The summary carries both the total and the per-sink breakdown.
  TraceSummary Sum = summarize(Hub);
  EXPECT_EQ(Sum.DroppedEvents, 6u);
  ASSERT_EQ(Sum.DroppedBySink.size(), 2u);
  EXPECT_EQ(Sum.DroppedBySink[0], 6u);
  EXPECT_EQ(Sum.Events, 7u) << "merge keeps what the rings retained";
}

TEST(TraceOverflowTest, RequestEventsFoldIntoSummary) {
  TraceSink S;
  S.emit(EventKind::Request, /*Profile=*/1, /*LatencyNs=*/2'000'000,
         /*StallNs=*/250'000);
  S.emit(EventKind::Request, /*Profile=*/0, /*LatencyNs=*/1'000'000,
         /*StallNs=*/0);
  TraceSummary Sum = summarize(S);
  EXPECT_EQ(Sum.Requests, 2u);
  EXPECT_EQ(Sum.RequestLatencyNanos, 3'000'000u);
  EXPECT_EQ(Sum.RequestStallNanos, 250'000u);
  // And the JSONL writer names the event (schema v2).
  std::ostringstream Os;
  writeJsonLines(Os, S, "gofree");
  EXPECT_NE(Os.str().find("\"ev\":\"request\""), std::string::npos);
  EXPECT_NE(Os.str().find("\"latency_ns\":2000000"), std::string::npos);
}
