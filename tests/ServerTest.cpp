//===- tests/ServerTest.cpp - Serving-harness (serve-sim) tests -----------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
// The open-loop serving harness behind `gofree serve-sim` and
// bench_server. Pins the properties the bench's honesty rests on: the
// request stream is seed-deterministic (same checksum across runs AND
// across collector backends / compile modes), percentiles are ordered and
// computed from the recorded per-request vectors, per-request stall
// attribution adds up to the run totals, and the trace hub sees one
// Request event per request. Runs under the `server_smoke` ctest label
// (tools/check.sh server), including a TSan build.
//
//===----------------------------------------------------------------------===//

#include "workloads/ServeSim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace gofree;
using namespace gofree::workloads;
using compiler::CompileMode;

namespace {

/// Small fixed-seed run: enough requests for real GC activity on the
/// partial-cycle backends, small enough for a smoke label.
ServeSimOptions smokeOpts() {
  ServeSimOptions O;
  O.Seed = 7;
  O.Workers = 3;
  O.Requests = 120;
  O.OfferedRps = 0.0; // Closed-loop: no wall-clock-dependent waits.
  O.Sessions = 4096;
  O.CacheSlots = 128;
  O.Profile = "mix";
  return O;
}

} // namespace

TEST(ServeSimTest, DeterministicChecksumAcrossRunsAndBackends) {
  ServeSimOptions O = smokeOpts();
  ServeSimResult First = runServeSim(O);
  ASSERT_TRUE(First.ok()) << First.Error;
  ASSERT_EQ(First.Requests, O.Requests);
  EXPECT_NE(First.Checksum, 0u);

  // Same seed, same stream: re-run agrees bit for bit.
  ServeSimResult Again = runServeSim(O);
  ASSERT_TRUE(Again.ok()) << Again.Error;
  EXPECT_EQ(Again.Checksum, First.Checksum);

  // Every collector backend and the stock-Go mode serve the identical
  // stream -- the differential-honesty law bench_server enforces.
  for (rt::GcBackendKind K :
       {rt::GcBackendKind::Generational, rt::GcBackendKind::Rc}) {
    ServeSimOptions BO = O;
    BO.Heap.Gc.Backend = K;
    ServeSimResult R = runServeSim(BO);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Checksum, First.Checksum)
        << "backend " << rt::gcBackendName(K) << " changed behavior";
  }
  ServeSimOptions GoO = O;
  GoO.Mode = CompileMode::Go;
  ServeSimResult Go = runServeSim(GoO);
  ASSERT_TRUE(Go.ok()) << Go.Error;
  EXPECT_EQ(Go.Checksum, First.Checksum) << "go leg changed behavior";
}

TEST(ServeSimTest, DifferentSeedsProduceDifferentStreams) {
  ServeSimOptions O = smokeOpts();
  ServeSimResult A = runServeSim(O);
  O.Seed = 8;
  ServeSimResult B = runServeSim(O);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_NE(A.Checksum, B.Checksum)
      << "the seed must actually shape the request stream";
}

TEST(ServeSimTest, PercentilesComeFromRecordedVectors) {
  ServeSimResult R = runServeSim(smokeOpts());
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.LatencyNs.size(), R.Requests);
  ASSERT_EQ(R.StallNs.size(), R.Requests);
  // Every request was actually served (closed-loop service time > 0).
  for (uint64_t L : R.LatencyNs)
    EXPECT_GT(L, 0u);
  EXPECT_LE(R.latencyPercentileNs(0.50), R.latencyPercentileNs(0.99));
  EXPECT_LE(R.latencyPercentileNs(0.99), R.latencyPercentileNs(0.999));
  uint64_t Max = *std::max_element(R.LatencyNs.begin(), R.LatencyNs.end());
  EXPECT_LE(R.latencyPercentileNs(0.999), Max);
  EXPECT_EQ(R.latencyPercentileNs(1.0), Max);
}

TEST(ServeSimTest, PercentileNsRankMath) {
  // 1..100: the exact sample percentile at rank ceil(Q*N).
  std::vector<uint64_t> V(100);
  std::iota(V.begin(), V.end(), 1);
  EXPECT_EQ(ServeSimResult::percentileNs(V, 0.50), 50u);
  EXPECT_EQ(ServeSimResult::percentileNs(V, 0.99), 99u);
  EXPECT_EQ(ServeSimResult::percentileNs(V, 0.999), 100u);
  EXPECT_EQ(ServeSimResult::percentileNs(V, 1.0), 100u);
  EXPECT_EQ(ServeSimResult::percentileNs({}, 0.5), 0u);
  EXPECT_EQ(ServeSimResult::percentileNs({42}, 0.999), 42u);
  // Order-independent: percentile sorts a copy.
  std::vector<uint64_t> Rev(V.rbegin(), V.rend());
  EXPECT_EQ(ServeSimResult::percentileNs(Rev, 0.99), 99u);
}

TEST(ServeSimTest, PerRequestStallsAddUpToRunTotals) {
  // Tight triggers so the run actually pauses: stalls only land on
  // requests, never between them (workers deregister while idle).
  ServeSimOptions O = smokeOpts();
  O.Requests = 200;
  O.Heap.Gc.MinHeapTrigger = 256 << 10;
  ServeSimResult R = runServeSim(O);
  ASSERT_TRUE(R.ok()) << R.Error;
  uint64_t PerRequest =
      std::accumulate(R.StallNs.begin(), R.StallNs.end(), (uint64_t)0);
  EXPECT_EQ(PerRequest, R.GcParkNanos + R.GcAssistNanos)
      << "per-request stall attribution must cover exactly the workers' "
         "park + assist time";
  EXPECT_GT(R.Stats.GcPauses, 0u) << "the tight trigger never paused; the "
                                     "attribution test proved nothing";
}

TEST(ServeSimTest, HubReceivesOneRequestEventPerRequest) {
  trace::TraceHub Hub;
  ServeSimOptions O = smokeOpts();
  O.Requests = 50;
  O.Hub = &Hub;
  ServeSimResult R = runServeSim(O);
  ASSERT_TRUE(R.ok()) << R.Error;
  trace::TraceSummary S = trace::summarize(Hub);
  EXPECT_EQ(S.Requests, 50u);
  EXPECT_EQ(S.DroppedBySink.size(), (size_t)O.Workers);
  // Latency totals folded by the summary match the recorded vector.
  EXPECT_EQ(S.RequestLatencyNanos,
            std::accumulate(R.LatencyNs.begin(), R.LatencyNs.end(),
                            (uint64_t)0));
}

TEST(ServeSimTest, OpenLoopMeasuresFromScheduledArrival) {
  ServeSimOptions O = smokeOpts();
  O.Requests = 60;
  O.OfferedRps = 50000.0; // Deliberately above service rate: queue builds.
  ServeSimResult R = runServeSim(O);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.OpenLoop);
  // With arrivals far faster than service, later requests queue; their
  // latency (from scheduled arrival) must exceed pure service time by the
  // time they waited. Weak but robust signal: p999 over an overloaded run
  // is at least the p50 (queueing never *reduces* measured latency), and
  // the achieved rate is below the offered rate.
  EXPECT_LT(R.AchievedRps, O.OfferedRps);
  EXPECT_GE(R.latencyPercentileNs(0.999), R.latencyPercentileNs(0.50));
}

TEST(ServeSimTest, BadProfileIsReportedNotCrashed) {
  ServeSimOptions O = smokeOpts();
  O.Profile = "hugo"; // Fixed profile works...
  ServeSimResult R = runServeSim(O);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_NE(R.Checksum, 0u);
}
