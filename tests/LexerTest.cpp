//===- tests/LexerTest.cpp - Unit tests for the MiniGo lexer --------------===//
//
// Part of the GoFree-CPP project, reproducing "GoFree: Reducing Garbage
// Collection via Compiler-Inserted Freeing" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "minigo/Lexer.h"

#include <gtest/gtest.h>

using namespace gofree;
using namespace gofree::minigo;

namespace {

std::vector<Token> lex(const std::string &Src) {
  DiagSink Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.dump();
  return Toks;
}

std::vector<TokKind> kinds(const std::string &Src) {
  std::vector<TokKind> Out;
  for (const Token &T : lex(Src))
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(LexerTest, EmptyInput) {
  auto Ks = kinds("");
  ASSERT_EQ(Ks.size(), 1u);
  EXPECT_EQ(Ks[0], TokKind::Eof);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Ts = lex("func foo make x_1");
  EXPECT_EQ(Ts[0].Kind, TokKind::KwFunc);
  EXPECT_EQ(Ts[1].Kind, TokKind::Ident);
  EXPECT_EQ(Ts[1].Text, "foo");
  EXPECT_EQ(Ts[2].Kind, TokKind::KwMake);
  EXPECT_EQ(Ts[3].Kind, TokKind::Ident);
  EXPECT_EQ(Ts[3].Text, "x_1");
}

TEST(LexerTest, IntegerLiterals) {
  auto Ts = lex("0 42 123456789");
  EXPECT_EQ(Ts[0].IntValue, 0);
  EXPECT_EQ(Ts[1].IntValue, 42);
  EXPECT_EQ(Ts[2].IntValue, 123456789);
}

TEST(LexerTest, MultiCharOperators) {
  auto Ks = kinds(":= == != <= >= && ||");
  std::vector<TokKind> Want = {TokKind::Define, TokKind::EqEq, TokKind::NotEq,
                               TokKind::Le,     TokKind::Ge,   TokKind::AndAnd,
                               TokKind::OrOr,   TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, AutomaticSemicolonInsertion) {
  auto Ks = kinds("x := 1\ny := 2\n");
  std::vector<TokKind> Want = {
      TokKind::Ident, TokKind::Define, TokKind::IntLit, TokKind::Semi,
      TokKind::Ident, TokKind::Define, TokKind::IntLit, TokKind::Semi,
      TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, NoSemicolonAfterOperators) {
  // A newline after '+' must not insert a semicolon.
  auto Ks = kinds("x = 1 +\n2\n");
  std::vector<TokKind> Want = {TokKind::Ident,  TokKind::Assign,
                               TokKind::IntLit, TokKind::Plus,
                               TokKind::IntLit, TokKind::Semi,
                               TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, SemicolonAfterRBrace) {
  auto Ks = kinds("{ x }\n");
  std::vector<TokKind> Want = {TokKind::LBrace, TokKind::Ident, TokKind::Semi,
                               TokKind::RBrace, TokKind::Semi, TokKind::Eof};
  // Note: "x }" has no newline between x and }, so no semi after x... but the
  // lexer only inserts semicolons at newlines.
  Want = {TokKind::LBrace, TokKind::Ident, TokKind::RBrace, TokKind::Semi,
          TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto Ks = kinds("x // the variable\ny");
  std::vector<TokKind> Want = {TokKind::Ident, TokKind::Semi, TokKind::Ident,
                               TokKind::Semi, TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, BlockCommentsAreSkipped) {
  auto Ks = kinds("a /* b c d */ e");
  std::vector<TokKind> Want = {TokKind::Ident, TokKind::Ident, TokKind::Semi,
                               TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, BlockCommentWithNewlineInsertsSemi) {
  auto Ks = kinds("a /* multi\nline */ e");
  std::vector<TokKind> Want = {TokKind::Ident, TokKind::Semi, TokKind::Ident,
                               TokKind::Semi, TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, SourceLocationsAreTracked) {
  auto Ts = lex("x\n  yy");
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[0].Loc.Col, 1u);
  // Ts[1] is the inserted semicolon.
  EXPECT_EQ(Ts[2].Loc.Line, 2u);
  EXPECT_EQ(Ts[2].Loc.Col, 3u);
}

TEST(LexerTest, UnknownCharacterIsReported) {
  DiagSink Diags;
  Lexer L("x @ y", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, AmpersandVsLogicalAnd) {
  auto Ks = kinds("&x && &y");
  std::vector<TokKind> Want = {TokKind::Amp,    TokKind::Ident,
                               TokKind::AndAnd, TokKind::Amp,
                               TokKind::Ident,  TokKind::Semi, TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}
